//! Rendering lint results: rustc-style text diagnostics with a per-rule
//! summary, or a SARIF 2.1.0-style JSON document (`--json` / `--sarif`)
//! built on the telemetry crate's deterministic [`Json`] value type, which
//! ci.sh archives as a diagnostic artifact.

use empower_telemetry::Json;

use crate::rules::{Rule, Violation, ALL_RULES};

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the gate.
    pub violations: Vec<Violation>,
    /// Violations absorbed by the `--baseline` ratchet: reported (text
    /// summary, SARIF `baselineState: "unchanged"`) but not failing.
    pub baselined: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Failing violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Human-readable rendering: one `file:line: rule: message` diagnostic
    /// per violation, then a per-rule summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        if self.ok() {
            out.push_str(&format!(
                "empower-lint: clean — {} files, 0 violations{}\n",
                self.files_scanned,
                match self.baselined.len() {
                    0 => String::new(),
                    n => format!(" ({n} baselined)"),
                }
            ));
        } else {
            let mut parts = Vec::new();
            for r in ALL_RULES {
                let n = self.count(r);
                if n > 0 {
                    parts.push(format!("{r}: {n} ({})", r.describe()));
                }
            }
            out.push_str(&format!(
                "empower-lint: {} violation{} in {} files\n  {}\n",
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                self.files_scanned,
                parts.join("\n  ")
            ));
        }
        out
    }

    /// SARIF 2.1.0-style rendering for machine consumption (CI artifacts,
    /// annotation tooling). Failing violations carry
    /// `baselineState: "new"`, ratchet-absorbed ones `"unchanged"`.
    pub fn render_json(&self) -> String {
        let rules: Vec<Json> = ALL_RULES
            .iter()
            .map(|r| {
                Json::obj([
                    ("id", Json::Str(r.name().to_string())),
                    ("shortDescription", Json::obj([("text", Json::Str(r.describe().into()))])),
                ])
            })
            .collect();
        let results: Vec<Json> = self
            .violations
            .iter()
            .map(|v| sarif_result(v, "new"))
            .chain(self.baselined.iter().map(|v| sarif_result(v, "unchanged")))
            .collect();
        let summary: Vec<(&str, Json)> = ALL_RULES
            .iter()
            .filter(|&&r| self.count(r) > 0)
            .map(|&r| (r.name(), Json::UInt(self.count(r) as u64)))
            .collect();
        let driver = Json::obj([
            ("name", Json::Str("empower-lint".into())),
            ("informationUri", Json::Str("DESIGN.md".into())),
            ("rules", Json::Arr(rules)),
        ]);
        let run = Json::obj([
            ("tool", Json::obj([("driver", driver)])),
            ("results", Json::Arr(results)),
            (
                "properties",
                Json::obj([
                    ("ok", Json::Bool(self.ok())),
                    ("filesScanned", Json::UInt(self.files_scanned as u64)),
                    ("baselined", Json::UInt(self.baselined.len() as u64)),
                    ("summary", Json::obj(summary)),
                ]),
            ),
        ]);
        Json::obj([
            ("version", Json::Str("2.1.0".into())),
            ("$schema", Json::Str("https://json.schemastore.org/sarif-2.1.0.json".into())),
            ("runs", Json::Arr(vec![run])),
        ])
        .to_string()
    }
}

fn sarif_result(v: &Violation, baseline_state: &str) -> Json {
    let location = Json::obj([(
        "physicalLocation",
        Json::obj([
            ("artifactLocation", Json::obj([("uri", Json::Str(v.file.clone()))])),
            ("region", Json::obj([("startLine", Json::UInt(v.line as u64))])),
        ]),
    )]);
    Json::obj([
        ("ruleId", Json::Str(v.rule.name().to_string())),
        ("level", Json::Str("error".into())),
        ("baselineState", Json::Str(baseline_state.to_string())),
        ("message", Json::obj([("text", Json::Str(v.message.clone()))])),
        ("locations", Json::Arr(vec![location])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            violations: vec![Violation {
                rule: Rule::D001,
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "`HashMap` in deterministic crate".into(),
            }],
            baselined: vec![Violation {
                rule: Rule::D005,
                file: "crates/y/src/lib.rs".into(),
                line: 3,
                message: "grandfathered unwrap".into(),
            }],
            files_scanned: 3,
        }
    }

    /// Navigates `runs[0]` of a parsed SARIF document.
    fn first_run(j: &Json) -> &Json {
        match j.get("runs").expect("runs") {
            Json::Arr(runs) => runs.first().expect("one run"),
            other => panic!("runs is not an array: {other:?}"),
        }
    }

    fn results(run: &Json) -> &[Json] {
        match run.get("results").expect("results") {
            Json::Arr(r) => r,
            other => panic!("results is not an array: {other:?}"),
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let txt = report().render_text();
        assert!(txt.contains("crates/x/src/lib.rs:7: D001:"));
        assert!(txt.contains("D001: 1"));
        assert!(!txt.contains("crates/y"), "baselined violations do not fail the text gate");
    }

    #[test]
    fn sarif_carries_results_rules_and_baseline_states() {
        let j = Json::parse(&report().render_json()).expect("valid JSON");
        assert_eq!(j.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = first_run(&j);
        let driver = run.get("tool").and_then(|t| t.get("driver")).expect("driver");
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("empower-lint"));

        let rs = results(run);
        assert_eq!(rs.len(), 2, "one failing + one baselined result");
        assert_eq!(rs[0].get("ruleId").and_then(Json::as_str), Some("D001"));
        assert_eq!(rs[0].get("baselineState").and_then(Json::as_str), Some("new"));
        assert_eq!(rs[1].get("baselineState").and_then(Json::as_str), Some("unchanged"));
        let line = rs[0]
            .get("locations")
            .and_then(|l| match l {
                Json::Arr(a) => a.first(),
                _ => None,
            })
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Json::as_u64);
        assert_eq!(line, Some(7));

        let props = run.get("properties").expect("properties");
        assert_eq!(props.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(props.get("filesScanned").and_then(Json::as_u64), Some(3));
        assert_eq!(props.get("baselined").and_then(Json::as_u64), Some(1));
        assert_eq!(
            props.get("summary").and_then(|s| s.get("D001")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report { files_scanned: 5, ..Report::default() };
        assert!(r.ok());
        assert!(r.render_text().contains("clean"));
        let j = Json::parse(&r.render_json()).expect("valid JSON");
        let props = first_run(&j).get("properties").expect("properties");
        assert_eq!(props.get("ok").and_then(Json::as_bool), Some(true));
        assert!(results(first_run(&j)).is_empty());
    }
}
