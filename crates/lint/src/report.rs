//! Rendering lint results: rustc-style text diagnostics with a per-rule
//! summary, or a machine-readable JSON document (`--json`) built on the
//! telemetry crate's deterministic [`Json`] value type.

use empower_telemetry::Json;

use crate::rules::{Rule, Violation, ALL_RULES};

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Human-readable rendering: one `file:line: rule: message` diagnostic
    /// per violation, then a per-rule summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        if self.ok() {
            out.push_str(&format!(
                "empower-lint: clean — {} files, 0 violations\n",
                self.files_scanned
            ));
        } else {
            let mut parts = Vec::new();
            for r in ALL_RULES {
                let n = self.count(r);
                if n > 0 {
                    parts.push(format!("{r}: {n} ({})", r.describe()));
                }
            }
            out.push_str(&format!(
                "empower-lint: {} violation{} in {} files\n  {}\n",
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                self.files_scanned,
                parts.join("\n  ")
            ));
        }
        out
    }

    /// JSON rendering for machine consumption (CI annotations, dashboards).
    pub fn render_json(&self) -> String {
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                Json::obj([
                    ("file", Json::Str(v.file.clone())),
                    ("line", Json::UInt(v.line as u64)),
                    ("rule", Json::Str(v.rule.name().to_string())),
                    ("message", Json::Str(v.message.clone())),
                ])
            })
            .collect();
        let summary: Vec<(&str, Json)> = ALL_RULES
            .iter()
            .filter(|&&r| self.count(r) > 0)
            .map(|&r| (r.name(), Json::UInt(self.count(r) as u64)))
            .collect();
        Json::obj([
            ("ok", Json::Bool(self.ok())),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            ("violations", Json::Arr(violations)),
            ("summary", Json::obj(summary)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            violations: vec![Violation {
                rule: Rule::D001,
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "`HashMap` in deterministic crate".into(),
            }],
            files_scanned: 3,
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let txt = report().render_text();
        assert!(txt.contains("crates/x/src/lib.rs:7: D001:"));
        assert!(txt.contains("D001: 1"));
    }

    #[test]
    fn json_round_trips_and_carries_counts() {
        let j = Json::parse(&report().render_json()).expect("valid JSON");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("files_scanned").and_then(Json::as_u64), Some(3));
        let summary = j.get("summary").expect("summary");
        assert_eq!(summary.get("D001").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report { violations: Vec::new(), files_scanned: 5 };
        assert!(r.ok());
        assert!(r.render_text().contains("clean"));
        let j = Json::parse(&r.render_json()).expect("valid JSON");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
    }
}
