//! Phase 1 of the workspace-aware analysis: a lightweight module /
//! `use`-resolution index built over every lintable file before any rule
//! runs.
//!
//! Three things live here, all consumed by the phase-2 rules:
//!
//! * **import maps** — per file, every `use` declaration parsed into
//!   `local name → full path segments` (groups, `as`-aliases and nested
//!   trees included), so a rule can ask what `channel` *means* in this
//!   file instead of pattern-matching on the bare word;
//! * **pub items** — every `fn` item with its canonical module path
//!   (derived from the file's position in the workspace, e.g.
//!   `crates/bench/src/parallel.rs::run_indexed` →
//!   `empower_bench::parallel::run_indexed`) and body line span;
//! * **sanctioned idioms** — items marked in-code with
//!   `// empower-lint: sanction(D007, D008) — <why>`: the concurrency
//!   rules exempt the marked item's span and name the item in their
//!   diagnostics, so the sanctioned alternative is discovered by
//!   resolution, never by a hard-coded filename.
//!
//! The index also carries the ambient-config registry
//! (`crates/lint/env_registry.toml`) that rule D011 checks `EMPOWER_*`
//! env reads against.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Lexed, TokKind};
use crate::rules::{parse_rule_list_and_reason, FileContext, Rule, Violation};

/// Rules that may be sanctioned on an item. Only the concurrency rules
/// have a "one blessed implementation" shape; the determinism rules
/// D001–D006 take per-site `allow(..)` pragmas instead.
pub const SANCTIONABLE: [Rule; 4] = [Rule::D007, Rule::D008, Rule::D009, Rule::D010];

/// One `fn` item discovered in phase 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// The item's own name, e.g. `run_indexed`.
    pub name: String,
    /// Canonical `::`-joined path, e.g. `empower_bench::parallel::run_indexed`.
    pub path: String,
    /// Repo-relative file the item lives in.
    pub file: String,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// Last line of the item (closing brace or `;`).
    pub end_line: u32,
    /// Whether the item is `pub` (any visibility restriction counts).
    pub is_pub: bool,
}

/// A sanctioned idiom: an item the concurrency rules treat as the one
/// blessed implementation of an otherwise-forbidden pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sanction {
    /// The rules this item is exempt from (and advertised for).
    pub rules: Vec<Rule>,
    /// Repo-relative file of the item.
    pub file: String,
    /// Canonical path of the item, e.g. `empower_bench::parallel::run_indexed`.
    pub item: String,
    /// Inclusive line span the sanction covers: pragma line through the
    /// item's closing brace.
    pub span: (u32, u32),
    /// The mandatory justification text.
    pub reason: String,
}

/// The phase-1 output: what every phase-2 rule may consult.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    items: Vec<PubItem>,
    sanctions: Vec<Sanction>,
    env_registry: BTreeSet<String>,
}

impl WorkspaceIndex {
    /// Indexes one file: collects its `fn` items and sanction pragmas.
    /// Returns the P001 violations for malformed sanction pragmas (the
    /// caller merges them into the report).
    pub fn add_file(&mut self, ctx: &FileContext, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let module = module_path(ctx);
        let items = collect_fn_items(&lexed, ctx, &module);
        let mut out = Vec::new();
        self.collect_sanctions(ctx, &lexed, &items, &mut out);
        self.items.extend(items);
        out
    }

    /// Installs the `EMPOWER_*` ambient-config registry D011 checks
    /// against.
    pub fn set_env_registry(&mut self, names: impl IntoIterator<Item = String>) {
        self.env_registry = names.into_iter().collect();
    }

    /// True if `name` is a registered ambient-config knob.
    pub fn env_registered(&self, name: &str) -> bool {
        self.env_registry.contains(name)
    }

    /// True when a sanction for `rule` covers `line` of `file`.
    pub fn sanction_covers(&self, file: &str, rule: Rule, line: u32) -> bool {
        self.sanctions.iter().any(|s| {
            s.file == file && s.rules.contains(&rule) && s.span.0 <= line && line <= s.span.1
        })
    }

    /// The first sanctioned item for `rule` (path order): what diagnostics
    /// point at as the blessed alternative.
    pub fn sanctioned_idiom(&self, rule: Rule) -> Option<&Sanction> {
        self.sanctions.iter().filter(|s| s.rules.contains(&rule)).min_by_key(|s| &s.item)
    }

    /// All sanctions, for docs/tests.
    pub fn sanctions(&self) -> &[Sanction] {
        &self.sanctions
    }

    /// All indexed `fn` items, for docs/tests.
    pub fn pub_items(&self) -> &[PubItem] {
        &self.items
    }

    fn collect_sanctions(
        &mut self,
        ctx: &FileContext,
        lexed: &Lexed,
        items: &[PubItem],
        out: &mut Vec<Violation>,
    ) {
        for c in &lexed.comments {
            let Some(rest) = crate::rules::pragma_body(&c.text) else { continue };
            let Some(body) = rest.trim_start().strip_prefix("sanction") else { continue };
            let mut bad = |msg: String| {
                out.push(Violation {
                    rule: Rule::P001,
                    file: ctx.path.clone(),
                    line: c.line,
                    message: msg,
                });
            };
            let parsed = match parse_rule_list_and_reason(body) {
                Ok(p) => p,
                Err(msgs) => {
                    for m in msgs {
                        bad(m);
                    }
                    continue;
                }
            };
            if let Some(r) = parsed.rules.iter().find(|r| !SANCTIONABLE.contains(r)) {
                bad(format!(
                    "rule {r} cannot be sanctioned — only the concurrency rules \
                     (D007–D010) have sanctioned idioms; use `allow({r})` at the site"
                ));
                continue;
            }
            // The pragma block (contiguous comment lines) must directly
            // precede the item it blesses; a couple of attribute lines in
            // between are tolerated.
            let block_end = comment_block_end(lexed, c.line);
            let Some(item) = items
                .iter()
                .filter(|i| i.line > c.line && i.line <= block_end + 3)
                .min_by_key(|i| i.line)
            else {
                bad("sanction pragma does not precede a function item".to_string());
                continue;
            };
            self.sanctions.push(Sanction {
                rules: parsed.rules,
                file: ctx.path.clone(),
                item: item.path.clone(),
                span: (c.line, item.end_line),
                reason: parsed.reason,
            });
        }
    }
}

/// The last line of the contiguous comment block containing `line`.
pub(crate) fn comment_block_end(lexed: &Lexed, line: u32) -> u32 {
    let mut end = line;
    while lexed.comments.iter().any(|c| c.line == end + 1) {
        end += 1;
    }
    end
}

/// Canonical module path of a file: `crates/bench/src/parallel.rs` →
/// `["empower_bench", "parallel"]`. Crate roots (`lib.rs`, `main.rs`,
/// `src/bin/*.rs`) and `mod.rs` fold into their parent.
pub(crate) fn module_path(ctx: &FileContext) -> Vec<String> {
    let mut segs = vec![ctx.crate_name.replace('-', "_")];
    if let Some(pos) = ctx.path.find("src/") {
        let tail = &ctx.path[pos + 4..];
        let tail = tail.strip_suffix(".rs").unwrap_or(tail);
        for part in tail.split('/') {
            match part {
                "lib" | "main" | "mod" | "bin" | "" => {}
                p => segs.push(p.to_string()),
            }
        }
    }
    segs
}

/// Collects every `fn` item with its canonical path and body span.
fn collect_fn_items(lexed: &Lexed, ctx: &FileContext, module: &[String]) -> Vec<PubItem> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if lexed.ident(i) != Some("fn") {
            continue;
        }
        let Some(name) = lexed.ident(i + 1) else { continue };
        // Visibility: `pub fn`, `pub(crate) fn`, `pub(in …) fn`.
        let is_pub = lexed.ident(i.wrapping_sub(1)) == Some("pub")
            || (lexed.punct(i.wrapping_sub(1), ')')
                && (0..i).rev().take(6).any(|j| lexed.ident(j) == Some("pub")));
        let end_line = item_end_line(lexed, i);
        let mut path = module.to_vec();
        path.push(name.to_string());
        out.push(PubItem {
            name: name.to_string(),
            path: path.join("::"),
            file: ctx.path.clone(),
            line: tok.line,
            end_line,
            is_pub,
        });
    }
    out
}

/// Line of the end of the item whose `fn` token sits at `i`: the matching
/// close of the first body `{`, or the `;` of a bodyless signature.
fn item_end_line(lexed: &Lexed, i: usize) -> u32 {
    let toks = &lexed.tokens;
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct(';') if depth == 0 => return toks[j].line,
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return toks[j].line;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.get(i).map(|t| t.line).unwrap_or(1)
}

/// Parses every `use` declaration of a file into `local name → full path
/// segments`. Groups (`{a, b}`), `as` aliases and `self` leaves resolve;
/// globs are unresolvable and ignored.
pub(crate) fn collect_imports(lexed: &Lexed) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.ident(i) == Some("use") {
            i = use_tree(lexed, i + 1, &[], &mut map);
        }
        i += 1;
    }
    map
}

/// Parses one use-tree starting at token `i` with `prefix` already
/// collected; records leaves into `map`; returns the index of the
/// terminating token (`,`, `}`, `;`, or end).
fn use_tree(
    lexed: &Lexed,
    mut i: usize,
    prefix: &[String],
    map: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    let mut leafless = false; // alias recorded, group parsed, or glob
    loop {
        match lexed.tokens.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) if s == "as" => {
                if let Some(alias) = lexed.ident(i + 1) {
                    if alias != "_" {
                        map.insert(alias.to_string(), path.clone());
                    }
                    i += 2;
                } else {
                    i += 1;
                }
                leafless = true;
            }
            Some(TokKind::Ident(seg)) => {
                path.push(seg.clone());
                i += 1;
            }
            Some(TokKind::Punct(':')) => i += 1,
            Some(TokKind::Punct('*')) => {
                leafless = true;
                i += 1;
            }
            Some(TokKind::Punct('{')) => {
                i += 1;
                loop {
                    match lexed.tokens.get(i).map(|t| &t.kind) {
                        Some(TokKind::Punct('}')) => {
                            i += 1;
                            break;
                        }
                        Some(TokKind::Punct(',')) => i += 1,
                        Some(_) => i = use_tree(lexed, i, &path, map),
                        None => return i,
                    }
                }
                leafless = true;
            }
            Some(TokKind::Punct(';' | ',' | '}')) | None => {
                if !leafless && path.len() > prefix.len() {
                    let mut full = path.clone();
                    // `use std::sync::{self, Mutex}`: `self` names the
                    // parent module.
                    if full.last().map(String::as_str) == Some("self") {
                        full.pop();
                    }
                    if let Some(name) = full.last().cloned() {
                        map.insert(name, full);
                    }
                }
                return i;
            }
            Some(_) => i += 1,
        }
    }
}

/// The `::`-joined path whose final segment is the ident at token `i`,
/// walking back across `seg::seg::…`. Returns `(head_token_index, segments)`.
pub(crate) fn path_ending_at(lexed: &Lexed, i: usize) -> (usize, Vec<String>) {
    let mut segs = vec![lexed.ident(i).unwrap_or_default().to_string()];
    let mut j = i;
    while j >= 3 && lexed.punct(j - 1, ':') && lexed.punct(j - 2, ':') {
        match lexed.ident(j - 3) {
            Some(prev) => {
                segs.insert(0, prev.to_string());
                j -= 3;
            }
            None => break,
        }
    }
    (j, segs)
}

/// Expands the head of `segs` through the file's import map (and `crate`
/// to the owning crate), yielding the canonical absolute path — e.g. with
/// `use std::sync::mpsc;` in scope, `["mpsc", "channel"]` canonicalizes to
/// `["std", "sync", "mpsc", "channel"]`.
pub(crate) fn canonicalize(
    imports: &BTreeMap<String, Vec<String>>,
    ctx: &FileContext,
    segs: &[String],
) -> Vec<String> {
    let Some(head) = segs.first() else { return Vec::new() };
    if let Some(full) = imports.get(head) {
        full.iter().chain(segs.iter().skip(1)).cloned().collect()
    } else if head == "crate" {
        std::iter::once(ctx.crate_name.replace('-', "_"))
            .chain(segs.iter().skip(1).cloned())
            .collect()
    } else {
        segs.to_vec()
    }
}

/// One ambient-config read: a resolved `std::env::var` / `var_os` call.
/// `name` is `Some` when the argument is a string literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvReadSite {
    pub line: u32,
    pub name: Option<String>,
}

/// Every `std::env::var` / `var_os` call in `lexed`, resolved through the
/// file's imports (so `use std::env; env::var(..)`, a bare imported `var`,
/// and the fully qualified form all count; method calls `.var(..)` do not).
pub(crate) fn env_reads(
    lexed: &Lexed,
    imports: &BTreeMap<String, Vec<String>>,
    ctx: &FileContext,
) -> Vec<EnvReadSite> {
    let mut out = Vec::new();
    for i in 0..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if id != "var" && id != "var_os" {
            continue;
        }
        if !lexed.punct(i + 1, '(') || (i > 0 && lexed.punct(i - 1, '.')) {
            continue;
        }
        let (_, segs) = path_ending_at(lexed, i);
        let canon = canonicalize(imports, ctx, &segs);
        let is_env = canon.len() >= 2
            && canon[canon.len() - 2] == "env"
            && (canon.len() == 2 || canon[0] == "std");
        if !is_env {
            continue;
        }
        out.push(EnvReadSite {
            line: lexed.tokens[i].line,
            name: lexed.str_lit(i + 2).map(String::from),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, krate: &str) -> FileContext {
        FileContext {
            path: path.to_string(),
            crate_name: krate.to_string(),
            is_crate_root: false,
            is_bin: false,
            is_scaffold: false,
        }
    }

    #[test]
    fn module_paths_fold_roots_and_nest() {
        assert_eq!(
            module_path(&ctx("crates/bench/src/parallel.rs", "empower-bench")),
            vec!["empower_bench", "parallel"]
        );
        assert_eq!(module_path(&ctx("crates/sim/src/lib.rs", "empower-sim")), vec!["empower_sim"]);
        assert_eq!(
            module_path(&ctx("crates/model/src/topology/random.rs", "empower-model")),
            vec!["empower_model", "topology", "random"]
        );
        assert_eq!(
            module_path(&ctx("src/bin/empower.rs", "empower-repro")),
            vec!["empower_repro", "empower"]
        );
    }

    #[test]
    fn imports_cover_groups_aliases_and_self() {
        let lexed = lex("use std::sync::{self, Mutex, atomic::{AtomicUsize, Ordering}};\n\
                         use std::sync::mpsc::channel as chan;\n\
                         use empower_bench::parallel::run_indexed;\n");
        let map = collect_imports(&lexed);
        assert_eq!(map["sync"], vec!["std", "sync"]);
        assert_eq!(map["Mutex"], vec!["std", "sync", "Mutex"]);
        assert_eq!(map["Ordering"], vec!["std", "sync", "atomic", "Ordering"]);
        assert_eq!(map["chan"], vec!["std", "sync", "mpsc", "channel"]);
        assert_eq!(map["run_indexed"], vec!["empower_bench", "parallel", "run_indexed"]);
    }

    #[test]
    fn canonicalize_resolves_heads_through_imports() {
        let c = ctx("crates/x/src/m.rs", "empower-x");
        let lexed = lex("use std::sync::mpsc;\n");
        let map = collect_imports(&lexed);
        let canon = canonicalize(&map, &c, &["mpsc".into(), "channel".into()]);
        assert_eq!(canon, vec!["std", "sync", "mpsc", "channel"]);
        let canon = canonicalize(&map, &c, &["crate".into(), "util".into()]);
        assert_eq!(canon, vec!["empower_x", "util"]);
    }

    #[test]
    fn sanction_binds_to_the_following_item_by_resolution() {
        let src = "/// empower-lint: sanction(D008) — the work cursor only\n\
                   /// distributes indices; no ordering is derived from it.\n\
                   pub fn run_indexed(n: usize) -> usize {\n\
                       n\n\
                   }\n";
        let mut index = WorkspaceIndex::default();
        let p001 = index.add_file(&ctx("crates/bench/src/parallel.rs", "empower-bench"), src);
        assert!(p001.is_empty(), "unexpected P001: {p001:?}");
        let s = index.sanctioned_idiom(Rule::D008).expect("sanction recorded");
        assert_eq!(s.item, "empower_bench::parallel::run_indexed");
        assert_eq!(s.span, (1, 5));
        assert!(index.sanction_covers("crates/bench/src/parallel.rs", Rule::D008, 4));
        assert!(!index.sanction_covers("crates/bench/src/parallel.rs", Rule::D007, 4));
        assert!(!index.sanction_covers("crates/other/src/lib.rs", Rule::D008, 4));
    }

    #[test]
    fn sanction_without_item_or_of_wrong_rule_is_p001() {
        let mut index = WorkspaceIndex::default();
        let c = ctx("crates/x/src/m.rs", "empower-x");
        let dangling = index.add_file(&c, "// empower-lint: sanction(D008) — no item follows\n");
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].rule, Rule::P001);
        let wrong = index
            .add_file(&c, "// empower-lint: sanction(D001) — not sanctionable\npub fn f() {}\n");
        assert_eq!(wrong.len(), 1);
        let reasonless = index.add_file(&c, "// empower-lint: sanction(D008)\npub fn f() {}\n");
        assert_eq!(reasonless.len(), 1);
    }

    #[test]
    fn fn_items_carry_pub_and_spans() {
        let src = "fn private() {}\n\
                   pub fn public() {\n    let x = 1;\n}\n\
                   pub(crate) fn scoped() {}\n";
        let mut index = WorkspaceIndex::default();
        index.add_file(&ctx("crates/x/src/m.rs", "empower-x"), src);
        let items = index.pub_items();
        assert_eq!(items.len(), 3);
        assert!(!items[0].is_pub);
        assert!(items[1].is_pub && items[1].line == 2 && items[1].end_line == 4);
        assert!(items[2].is_pub);
        assert_eq!(items[1].path, "empower_x::m::public");
    }

    #[test]
    fn env_reads_resolve_through_imports() {
        let c = ctx("crates/x/src/m.rs", "empower-x");
        let direct = lex("fn f() { std::env::var(\"EMPOWER_A\").ok(); }\n");
        let reads = env_reads(&direct, &collect_imports(&direct), &c);
        assert_eq!(reads, vec![EnvReadSite { line: 1, name: Some("EMPOWER_A".into()) }]);

        let imported = lex("use std::env;\nfn f() { env::var_os(\"EMPOWER_B\"); }\n");
        let reads = env_reads(&imported, &collect_imports(&imported), &c);
        assert_eq!(reads, vec![EnvReadSite { line: 2, name: Some("EMPOWER_B".into()) }]);

        // A same-named method and an unrelated `var` do not resolve.
        let foreign = lex("fn f(p: &P) { p.var(\"x\"); var(\"y\"); }\n");
        assert!(env_reads(&foreign, &collect_imports(&foreign), &c).is_empty());

        // Non-literal names surface as `None`.
        let dynamic = lex("fn f(n: &str) { std::env::var(n).ok(); }\n");
        let reads = env_reads(&dynamic, &collect_imports(&dynamic), &c);
        assert_eq!(reads, vec![EnvReadSite { line: 1, name: None }]);
    }
}
