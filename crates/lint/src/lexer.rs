//! A minimal Rust lexer: just enough structure for the determinism lints.
//!
//! The workspace is deliberately dependency-free, so instead of `syn` the
//! lint walks a token stream produced here. The lexer understands every
//! construct that could make a naive text scan lie about code: line and
//! (nested) block comments, string / raw-string / byte-string literals,
//! char literals vs. lifetimes, numeric literals and raw identifiers.
//! Everything the rules match on — identifiers and punctuation — comes out
//! with its 1-based source line, and comments are collected separately so
//! the suppression-pragma parser can see them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// The token classes the rules care about. Char and number literals are
/// consumed but not emitted; string literals surface as [`TokKind::Str`]
/// so D011 can read env-var names, but no rule ever matches *identifiers*
/// against them — `"HashMap"` in a string can never trip D001.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Punct(char),
    /// The contents of a string / raw-string / byte-string literal, with
    /// escape sequences left exactly as written (no rule interprets them).
    Str(String),
}

/// A comment with its 1-based starting line (pragmas live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Convenience for rules: the identifier text at `idx`, if any.
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Convenience for rules: true if the token at `idx` is punct `c`.
    pub fn punct(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }

    /// Convenience for rules: the string-literal contents at `idx`, if any.
    pub fn str_lit(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.kind) {
            Some(TokKind::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` (one `.rs` file) into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                // Bytes, not chars: comments may contain multi-byte UTF-8
                // (the pragma em-dash), so decode once at the end.
                let mut bytes = Vec::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                    bytes.push(c);
                }
                out.comments
                    .push(Comment { line, text: String::from_utf8_lossy(&bytes).into_owned() });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut bytes = Vec::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            bytes.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments
                    .push(Comment { line, text: String::from_utf8_lossy(&bytes).into_owned() });
            }
            b'"' => {
                let s = consume_string(&mut cur);
                out.tokens.push(Token { line, kind: TokKind::Str(s) });
            }
            b'\'' => consume_char_or_lifetime(&mut cur, &mut out, line),
            b if b.is_ascii_digit() => consume_number(&mut cur),
            b if is_ident_start(b) => {
                let ident = consume_ident(&mut cur);
                match ident.as_str() {
                    // Possible string/byte/raw/C-string prefixes.
                    "r" | "b" | "br" | "rb" | "c" | "cr" => {
                        prefix_follow(&mut cur, &mut out, ident, line);
                    }
                    _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
                }
            }
            other => {
                cur.bump();
                out.tokens.push(Token { line, kind: TokKind::Punct(other as char) });
            }
        }
    }
    out
}

fn consume_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        if is_ident_continue(b) {
            s.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// A `"..."` literal with escapes; the opening quote is at the cursor.
/// Returns the contents with escape pairs left as written.
fn consume_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let mut bytes = Vec::new();
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                bytes.push(b);
                if let Some(esc) = cur.bump() {
                    bytes.push(esc);
                }
            }
            b'"' => break,
            other => bytes.push(other),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A raw string `r##"..."##` — the cursor sits on the first `#` or `"`.
/// Backslashes are NOT escapes inside raw strings; only a quote followed
/// by the full opening hash run terminates. Returns the contents.
fn consume_raw_string(cur: &mut Cursor) -> String {
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return String::new(); // not actually a raw string; nothing sensible to do
    }
    cur.bump();
    let mut bytes = Vec::new();
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut n = 0usize;
                while n < hashes && cur.peek() == Some(b'#') {
                    n += 1;
                    cur.bump();
                }
                if n == hashes {
                    break;
                }
                // A quote with too few hashes is literal content.
                bytes.push(b'"');
                bytes.resize(bytes.len() + n, b'#');
            }
            Some(other) => bytes.push(other),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// After lexing an ident `r`/`b`/`br`/`rb`/`c`/`cr`, decide whether a
/// literal (or a raw identifier) follows and consume it, otherwise emit
/// the ident.
fn prefix_follow(cur: &mut Cursor, out: &mut Lexed, ident: String, line: u32) {
    let raw = ident.contains('r');
    match cur.peek() {
        Some(b'"') if raw => {
            let s = consume_raw_string(cur);
            out.tokens.push(Token { line, kind: TokKind::Str(s) });
        }
        Some(b'"') => {
            let s = consume_string(cur);
            out.tokens.push(Token { line, kind: TokKind::Str(s) });
        }
        Some(b'#') if raw => {
            // Either a raw string `r#"` / `r##"` or a raw identifier
            // `r#match`.
            let mut off = 0usize;
            while cur.peek_at(off) == Some(b'#') {
                off += 1;
            }
            match cur.peek_at(off) {
                Some(b'"') => {
                    let s = consume_raw_string(cur);
                    out.tokens.push(Token { line, kind: TokKind::Str(s) });
                }
                Some(c) if off == 1 && is_ident_start(c) => {
                    cur.bump(); // the '#'
                    let id = consume_ident(cur);
                    out.tokens.push(Token { line, kind: TokKind::Ident(id) });
                }
                _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
            }
        }
        Some(b'\'') if ident == "b" => {
            // Byte char literal b'x'.
            cur.bump();
            consume_char_body(cur);
        }
        _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
    }
}

/// The cursor sits just past the opening `'` of a char literal.
fn consume_char_body(cur: &mut Cursor) {
    match cur.bump() {
        Some(b'\\') => {
            cur.bump();
            // Escapes like \u{1F600} contain braces; skip to the quote.
            while let Some(b) = cur.peek() {
                cur.bump();
                if b == b'\'' {
                    return;
                }
            }
        }
        Some(_) if cur.peek() == Some(b'\'') => {
            cur.bump();
        }
        _ => {}
    }
}

/// Distinguishes `'a'` (char) from `'a` (lifetime); cursor on the `'`.
fn consume_char_or_lifetime(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => consume_char_body(cur),
        Some(c) if is_ident_start(c) => {
            // Could be 'x' (char) or 'label (lifetime). Look past the
            // identifier run: a closing quote means char literal.
            let mut off = 0usize;
            while cur.peek_at(off).is_some_and(is_ident_continue) {
                off += 1;
            }
            if cur.peek_at(off) == Some(b'\'') {
                for _ in 0..=off {
                    cur.bump();
                }
            } else {
                // Lifetime: consume the name, emit nothing (no rule needs
                // lifetimes, and a stray `'` punct would confuse matching).
                let _ = consume_ident(cur);
                let _ = line;
                let _ = &out;
            }
        }
        Some(_) => consume_char_body(cur),
        None => {}
    }
}

/// Numeric literal: digits, underscores, type suffixes, hex/oct/bin, a
/// decimal point followed by a digit, and `e±` exponents.
fn consume_number(cur: &mut Cursor) {
    let mut prev = 0u8;
    while let Some(b) = cur.peek() {
        let continues = b.is_ascii_alphanumeric()
            || b == b'_'
            || (b == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            || ((b == b'+' || b == b'-')
                && (prev == b'e' || prev == b'E')
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
        if !continues {
            break;
        }
        prev = b;
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts_carry_lines() {
        let l = lex("let x = 1;\nlet y = x;\n");
        assert_eq!(l.tokens[0], Token { line: 1, kind: TokKind::Ident("let".into()) });
        let y = l.tokens.iter().find(|t| t.kind == TokKind::Ident("y".into())).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\"; /* HashMap */\n";
        assert!(idents(src).iter().all(|i| i != "HashMap"));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r####"let s = r#"HashMap "quoted" inside"#; let t = r"x"; done"####;
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // Neither the lifetime name nor char contents leak as idents.
        assert!(!ids.contains(&"x".to_string()) || src.contains("(x:"));
        assert!(!ids.contains(&"n".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let after = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let".to_string(), "after".to_string()]);
    }

    #[test]
    fn numbers_do_not_emit_idents() {
        let ids = idents("let x = 0x1f + 1_000u64 + 1.5e-3 + 2e+9; a..b");
        assert!(!ids.contains(&"x1f".to_string()));
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"b".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ids = idents("let a = b\"HashMap\"; let c = b'H'; let r = br#\"Hash\"#; tail");
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.iter().any(|i| i.contains("Hash")));
    }

    #[test]
    fn raw_identifiers_come_through() {
        let ids = idents("let r#match = 1; r#match");
        assert_eq!(ids.iter().filter(|i| i.as_str() == "match").count(), 2);
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn string_contents_surface_as_str_tokens() {
        // D011 reads env-var names out of these.
        let got = strs("std::env::var(\"EMPOWER_KNOB\").ok();");
        assert_eq!(got, vec!["EMPOWER_KNOB".to_string()]);
    }

    #[test]
    fn raw_string_partial_terminators_stay_literal() {
        // `"#` inside an `r##"…"##` literal is content, not a terminator.
        let src = r####"let s = r##"quote "# still inside"##; after"####;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert_eq!(strs(src), vec![r##"quote "# still inside"##.to_string()]);
    }

    #[test]
    fn multiline_literals_keep_line_numbers_for_following_tokens() {
        // The plain string spans lines 1-3, the raw string lines 4-5, so
        // `after` lands on line 6.
        let src = "let a = \"one\ntwo\nthree\";\nlet b = r#\"x\ny\"#;\nafter";
        let l = lex(src);
        let after = l.tokens.iter().find(|t| t.kind == TokKind::Ident("after".into()));
        assert_eq!(after.map(|t| t.line), Some(6));
    }

    #[test]
    fn escaped_quotes_and_backslashes_do_not_leak_string_ends() {
        let ids = idents(r#"let a = "esc \" HashMap \\"; let b = b"\" Hash"; tail"#);
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.iter().any(|i| i.contains("Hash")));
    }

    #[test]
    fn raw_strings_do_not_treat_backslash_as_escape() {
        // In a raw string a trailing backslash must not swallow the
        // closing quote.
        let src = r#"let re = r"\d+\"; done"#;
        assert!(idents(src).contains(&"done".to_string()));
    }

    #[test]
    fn c_string_literals_are_consumed() {
        let src = "let p = c\"HashMap\"; let q = cr#\"Hash\"#; tail";
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.iter().any(|i| i.contains("Hash")));
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        for src in ["/* never closed /* nested", "let s = \"open", "let r = r#\"open", "b'"] {
            let _ = lex(src); // must terminate
        }
    }

    #[test]
    fn deeply_nested_block_comments_track_lines() {
        let src = "/* a\n/* b\n*/\nstill comment\n*/ let after = 1;";
        let l = lex(src);
        let after = l.tokens.iter().find(|t| t.kind == TokKind::Ident("after".into()));
        assert_eq!(after.map(|t| t.line), Some(5));
    }
}
