//! A minimal Rust lexer: just enough structure for the determinism lints.
//!
//! The workspace is deliberately dependency-free, so instead of `syn` the
//! lint walks a token stream produced here. The lexer understands every
//! construct that could make a naive text scan lie about code: line and
//! (nested) block comments, string / raw-string / byte-string literals,
//! char literals vs. lifetimes, numeric literals and raw identifiers.
//! Everything the rules match on — identifiers and punctuation — comes out
//! with its 1-based source line, and comments are collected separately so
//! the suppression-pragma parser can see them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// The token classes the rules care about. String/char/number literals are
/// consumed but not emitted: no lint matches on their contents, and keeping
/// them out means `"HashMap"` in a doc string can never trip D001.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Punct(char),
}

/// A comment with its 1-based starting line (pragmas live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Convenience for rules: the identifier text at `idx`, if any.
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Convenience for rules: true if the token at `idx` is punct `c`.
    pub fn punct(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` (one `.rs` file) into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                // Bytes, not chars: comments may contain multi-byte UTF-8
                // (the pragma em-dash), so decode once at the end.
                let mut bytes = Vec::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                    bytes.push(c);
                }
                out.comments
                    .push(Comment { line, text: String::from_utf8_lossy(&bytes).into_owned() });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut bytes = Vec::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            bytes.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments
                    .push(Comment { line, text: String::from_utf8_lossy(&bytes).into_owned() });
            }
            b'"' => consume_string(&mut cur),
            b'\'' => consume_char_or_lifetime(&mut cur, &mut out, line),
            b if b.is_ascii_digit() => consume_number(&mut cur),
            b if is_ident_start(b) => {
                let ident = consume_ident(&mut cur);
                match ident.as_str() {
                    // Possible string/byte/raw prefixes.
                    "r" | "b" | "br" | "rb" => {
                        prefix_follow(&mut cur, &mut out, ident, line);
                    }
                    _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
                }
            }
            other => {
                cur.bump();
                out.tokens.push(Token { line, kind: TokKind::Punct(other as char) });
            }
        }
    }
    out
}

fn consume_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        if is_ident_continue(b) {
            s.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// A `"..."` literal with escapes; the opening quote is at the cursor.
fn consume_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// A raw string `r##"..."##` — the cursor sits on the first `#` or `"`.
fn consume_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return; // not actually a raw string; nothing sensible to do
    }
    cur.bump();
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut n = 0usize;
                while n < hashes && cur.peek() == Some(b'#') {
                    n += 1;
                    cur.bump();
                }
                if n == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

/// After lexing an ident `r`/`b`/`br`/`rb`, decide whether a literal (or a
/// raw identifier) follows and consume it, otherwise emit the ident.
fn prefix_follow(cur: &mut Cursor, out: &mut Lexed, ident: String, line: u32) {
    let raw = ident.contains('r');
    match cur.peek() {
        Some(b'"') if raw => consume_raw_string(cur),
        Some(b'"') => consume_string(cur),
        Some(b'#') if raw => {
            // Either a raw string `r#"` / `r##"` or a raw identifier
            // `r#match`.
            let mut off = 0usize;
            while cur.peek_at(off) == Some(b'#') {
                off += 1;
            }
            match cur.peek_at(off) {
                Some(b'"') => consume_raw_string(cur),
                Some(c) if off == 1 && is_ident_start(c) => {
                    cur.bump(); // the '#'
                    let id = consume_ident(cur);
                    out.tokens.push(Token { line, kind: TokKind::Ident(id) });
                }
                _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
            }
        }
        Some(b'\'') if ident == "b" => {
            // Byte char literal b'x'.
            cur.bump();
            consume_char_body(cur);
        }
        _ => out.tokens.push(Token { line, kind: TokKind::Ident(ident) }),
    }
}

/// The cursor sits just past the opening `'` of a char literal.
fn consume_char_body(cur: &mut Cursor) {
    match cur.bump() {
        Some(b'\\') => {
            cur.bump();
            // Escapes like \u{1F600} contain braces; skip to the quote.
            while let Some(b) = cur.peek() {
                cur.bump();
                if b == b'\'' {
                    return;
                }
            }
        }
        Some(_) if cur.peek() == Some(b'\'') => {
            cur.bump();
        }
        _ => {}
    }
}

/// Distinguishes `'a'` (char) from `'a` (lifetime); cursor on the `'`.
fn consume_char_or_lifetime(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => consume_char_body(cur),
        Some(c) if is_ident_start(c) => {
            // Could be 'x' (char) or 'label (lifetime). Look past the
            // identifier run: a closing quote means char literal.
            let mut off = 0usize;
            while cur.peek_at(off).is_some_and(is_ident_continue) {
                off += 1;
            }
            if cur.peek_at(off) == Some(b'\'') {
                for _ in 0..=off {
                    cur.bump();
                }
            } else {
                // Lifetime: consume the name, emit nothing (no rule needs
                // lifetimes, and a stray `'` punct would confuse matching).
                let _ = consume_ident(cur);
                let _ = line;
                let _ = &out;
            }
        }
        Some(_) => consume_char_body(cur),
        None => {}
    }
}

/// Numeric literal: digits, underscores, type suffixes, hex/oct/bin, a
/// decimal point followed by a digit, and `e±` exponents.
fn consume_number(cur: &mut Cursor) {
    let mut prev = 0u8;
    while let Some(b) = cur.peek() {
        let continues = b.is_ascii_alphanumeric()
            || b == b'_'
            || (b == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            || ((b == b'+' || b == b'-')
                && (prev == b'e' || prev == b'E')
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
        if !continues {
            break;
        }
        prev = b;
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts_carry_lines() {
        let l = lex("let x = 1;\nlet y = x;\n");
        assert_eq!(l.tokens[0], Token { line: 1, kind: TokKind::Ident("let".into()) });
        let y = l.tokens.iter().find(|t| t.kind == TokKind::Ident("y".into())).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\"; /* HashMap */\n";
        assert!(idents(src).iter().all(|i| i != "HashMap"));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r####"let s = r#"HashMap "quoted" inside"#; let t = r"x"; done"####;
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // Neither the lifetime name nor char contents leak as idents.
        assert!(!ids.contains(&"x".to_string()) || src.contains("(x:"));
        assert!(!ids.contains(&"n".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let after = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let".to_string(), "after".to_string()]);
    }

    #[test]
    fn numbers_do_not_emit_idents() {
        let ids = idents("let x = 0x1f + 1_000u64 + 1.5e-3 + 2e+9; a..b");
        assert!(!ids.contains(&"x1f".to_string()));
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"b".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ids = idents("let a = b\"HashMap\"; let c = b'H'; let r = br#\"Hash\"#; tail");
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.iter().any(|i| i.contains("Hash")));
    }

    #[test]
    fn raw_identifiers_come_through() {
        let ids = idents("let r#match = 1; r#match");
        assert_eq!(ids.iter().filter(|i| i.as_str() == "match").count(), 2);
    }
}
