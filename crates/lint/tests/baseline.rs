//! The baseline-ratchet contract, end to end over the public API:
//! grandfathered violations pass within their allowance, *adding* one
//! fails the whole (file, rule) group, and a passing run tightens the
//! baseline so counts only ever go down.

#![forbid(unsafe_code)]

use empower_lint::{Baseline, Report, Rule, Violation};

fn violation(rule: Rule, file: &str, line: u32) -> Violation {
    Violation { rule, file: file.into(), line, message: format!("{rule} at {file}:{line}") }
}

fn report_with(violations: Vec<Violation>) -> Report {
    Report { violations, ..Report::default() }
}

#[test]
fn adding_a_violation_fails_even_with_a_baseline() {
    let baseline = Baseline::parse("D005 1 crates/x/src/lib.rs\n").expect("valid baseline");
    // The grandfathered site plus a newly added one: over allowance.
    let mut report = report_with(vec![
        violation(Rule::D005, "crates/x/src/lib.rs", 10),
        violation(Rule::D005, "crates/x/src/lib.rs", 99),
    ]);
    let tightened = baseline.apply(&mut report);
    assert!(!report.ok(), "a new violation must fail the gate");
    assert_eq!(report.violations.len(), 2, "no partial credit inside a failing group");
    assert_eq!(tightened, baseline, "failing runs never rewrite the ceiling");
}

#[test]
fn removing_a_violation_auto_tightens() {
    let baseline =
        Baseline::parse("D005 2 crates/x/src/lib.rs\nD001 1 crates/y/src/lib.rs\n").unwrap();
    // One of the two grandfathered D005 sites was cleaned up.
    let mut report = report_with(vec![
        violation(Rule::D005, "crates/x/src/lib.rs", 10),
        violation(Rule::D001, "crates/y/src/lib.rs", 4),
    ]);
    let tightened = baseline.apply(&mut report);
    assert!(report.ok(), "within allowance passes");
    assert_eq!(report.baselined.len(), 2, "absorbed violations stay visible");
    let expected =
        Baseline::parse("D005 1 crates/x/src/lib.rs\nD001 1 crates/y/src/lib.rs\n").unwrap();
    assert_eq!(tightened, expected, "the ceiling follows the cleanup down");
    // Round two: the tightened baseline is exactly as strict as the code.
    let mut again = report_with(vec![
        violation(Rule::D005, "crates/x/src/lib.rs", 10),
        violation(Rule::D005, "crates/x/src/lib.rs", 11),
        violation(Rule::D001, "crates/y/src/lib.rs", 4),
    ]);
    let after = tightened.apply(&mut again);
    assert!(!again.ok(), "re-adding the cleaned-up violation now fails");
    assert_eq!(after, tightened);
}

#[test]
fn an_empty_baseline_means_zero_tolerance() {
    let empty = Baseline::default();
    let mut report = report_with(vec![violation(Rule::D007, "crates/z/src/lib.rs", 1)]);
    let tightened = empty.apply(&mut report);
    assert!(!report.ok(), "new code enters at zero");
    assert!(tightened.is_empty());
    // The shipped baseline file is empty (comments only): the workspace
    // holds the zero-violation line.
    let shipped = Baseline::parse(include_str!("../baseline.lint")).expect("shipped baseline");
    assert!(shipped.is_empty(), "baseline.lint must stay empty — fix violations instead");
}
