//! The ambient-config round-trip gate: `crates/lint/env_registry.toml`,
//! the Rust read sites, `ci.sh`, and the EXPERIMENTS.md knob table must
//! all agree.
//!
//! * every knob declared `reader = "rust"`/`"both"` is actually read by
//!   some `std::env::var`/`var_os` call in the workspace;
//! * every `EMPOWER_*` literal read in Rust is declared (D011 enforces
//!   this in the gate too — here it fails with the full diff);
//! * every knob declared `reader = "shell"`/`"both"` appears in ci.sh,
//!   and every `EMPOWER_*` token in ci.sh is declared;
//! * EXPERIMENTS.md embeds exactly the table `--env-table` renders.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;

use empower_lint::{load_registry, workspace_env_reads, Reader};

fn workspace_root() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

/// Every `EMPOWER_*` token in a shell/markdown file, by crude word scan.
fn empower_tokens(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(pos) = text[i..].find("EMPOWER_") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        // A bare `EMPOWER_` prefix (prose like "EMPOWER_* knobs") is not
        // a knob name.
        if end > start + "EMPOWER_".len() {
            out.insert(text[start..end].to_string());
        }
        i = end;
    }
    out
}

#[test]
fn every_rust_knob_is_read_and_every_read_is_registered() {
    let root = workspace_root();
    let registry = load_registry(&root).expect("registry loads");
    let reads = workspace_env_reads(&root).expect("workspace walk succeeds");

    let read_names: BTreeSet<&str> = reads
        .iter()
        .filter_map(|(_, site)| site.name.as_deref())
        .filter(|n| n.starts_with("EMPOWER_"))
        .collect();

    for knob in &registry.knobs {
        if matches!(knob.reader, Reader::Rust | Reader::Both) {
            assert!(
                read_names.contains(knob.name.as_str()),
                "{} is declared `reader = \"rust\"` but no Rust code reads it",
                knob.name
            );
        }
    }
    for (file, site) in &reads {
        if let Some(name) = site.name.as_deref() {
            if name.starts_with("EMPOWER_") {
                let knob = registry.get(name).unwrap_or_else(|| {
                    panic!("{file}:{}: `{name}` read but not registered", site.line)
                });
                assert!(
                    matches!(knob.reader, Reader::Rust | Reader::Both),
                    "{file}:{}: `{name}` is registered as shell-only but read from Rust",
                    site.line
                );
            }
        }
    }
}

#[test]
fn every_shell_knob_appears_in_ci_and_vice_versa() {
    let root = workspace_root();
    let registry = load_registry(&root).expect("registry loads");
    let ci = std::fs::read_to_string(root.join("ci.sh")).expect("ci.sh exists");
    let tokens = empower_tokens(&ci);

    for knob in &registry.knobs {
        if matches!(knob.reader, Reader::Shell | Reader::Both) {
            assert!(
                tokens.contains(&knob.name),
                "{} is declared `reader = \"shell\"` but never appears in ci.sh",
                knob.name
            );
        }
    }
    for token in &tokens {
        assert!(
            registry.get(token).is_some(),
            "ci.sh mentions `{token}`, which is not in the env registry"
        );
    }
}

#[test]
fn experiments_md_embeds_the_generated_table() {
    let root = workspace_root();
    let registry = load_registry(&root).expect("registry loads");
    let docs = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md");
    let table = registry.render_markdown_table();
    assert!(
        docs.contains(&table),
        "EXPERIMENTS.md is out of sync with the env registry — regenerate the knob table \
         with `cargo run -p empower-lint -- --env-table` and paste it between the \
         env-knob-table markers"
    );
}
