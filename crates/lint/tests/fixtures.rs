//! Fixture-driven integration tests: for every rule there is a violating
//! file, a clean file, and a pragma-suppressed file under
//! `crates/lint/fixtures/`. The workspace walker skips `fixtures/`
//! directories, so these files never reach the real gate; here each is fed
//! through [`lint_source`] and the reported `(rule, line)` pairs are
//! asserted exactly.

#![forbid(unsafe_code)]

use empower_lint::{
    lint_source, lint_source_indexed, parse_env_registry, FileContext, Rule, Violation,
    WorkspaceIndex,
};

fn module_ctx() -> FileContext {
    FileContext {
        path: "crates/model/src/fixture.rs".to_string(),
        crate_name: "empower-model".to_string(),
        is_crate_root: false,
        is_bin: false,
        is_scaffold: false,
    }
}

/// Lints `src` as a module of a deterministic library crate.
fn lint_module(src: &str) -> Vec<Violation> {
    lint_source(&module_ctx(), src)
}

/// Lints `src` as the root (`lib.rs`) of a deterministic library crate.
fn lint_root(src: &str) -> Vec<Violation> {
    let ctx = FileContext {
        path: "crates/model/src/lib.rs".to_string(),
        crate_name: "empower-model".to_string(),
        is_crate_root: true,
        is_bin: false,
        is_scaffold: false,
    };
    lint_source(&ctx, src)
}

/// Lints `src` as a module of a hot-path crate (D010 scope).
fn lint_hot_path(src: &str) -> Vec<Violation> {
    let ctx = FileContext {
        path: "crates/sim/src/fixture.rs".to_string(),
        crate_name: "empower-sim".to_string(),
        is_crate_root: false,
        is_bin: false,
        is_scaffold: false,
    };
    lint_source(&ctx, src)
}

/// Lints `src` with the repo's real env registry installed (D011 scope).
fn lint_with_registry(src: &str) -> Vec<Violation> {
    let registry =
        parse_env_registry(include_str!("../env_registry.toml")).expect("shipped registry parses");
    let ctx = module_ctx();
    let mut index = WorkspaceIndex::default();
    index.set_env_registry(registry.names());
    let mut out = index.add_file(&ctx, src);
    out.extend(lint_source_indexed(&ctx, src, &index));
    out
}

fn rule_lines(violations: &[Violation]) -> Vec<(Rule, u32)> {
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn d001_fixtures() {
    let v = lint_module(include_str!("../fixtures/d001_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D001, 1), (Rule::D001, 3), (Rule::D001, 4)]);
    assert!(lint_module(include_str!("../fixtures/d001_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d001_suppressed.rs")).is_empty());
}

#[test]
fn d002_fixtures() {
    let v = lint_module(include_str!("../fixtures/d002_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D002, 2)]);
    assert!(lint_module(include_str!("../fixtures/d002_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d002_suppressed.rs")).is_empty());
}

#[test]
fn d003_fixtures() {
    let v = lint_module(include_str!("../fixtures/d003_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D003, 2)]);
    assert!(lint_module(include_str!("../fixtures/d003_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d003_suppressed.rs")).is_empty());
}

#[test]
fn d004_fixtures() {
    let v = lint_module(include_str!("../fixtures/d004_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D004, 2)]);
    assert!(lint_module(include_str!("../fixtures/d004_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d004_suppressed.rs")).is_empty());
}

#[test]
fn d005_fixtures() {
    let v = lint_module(include_str!("../fixtures/d005_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D005, 2), (Rule::D005, 6), (Rule::D005, 10)]);
    assert!(lint_module(include_str!("../fixtures/d005_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d005_suppressed.rs")).is_empty());
}

#[test]
fn d006_fixtures() {
    let v = lint_root(include_str!("../fixtures/d006_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D006, 1)]);
    assert!(lint_root(include_str!("../fixtures/d006_clean.rs")).is_empty());
    assert!(lint_root(include_str!("../fixtures/d006_suppressed.rs")).is_empty());
    // The same file as a non-root module is not D006's business.
    assert!(lint_module(include_str!("../fixtures/d006_violating.rs")).is_empty());
}

#[test]
fn d007_fixtures() {
    let v = lint_module(include_str!("../fixtures/d007_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D007, 1), (Rule::D007, 5), (Rule::D007, 13)]);
    assert!(lint_module(include_str!("../fixtures/d007_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d007_suppressed.rs")).is_empty());
}

#[test]
fn d008_fixtures() {
    let v = lint_module(include_str!("../fixtures/d008_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D008, 4), (Rule::D008, 8)]);
    assert!(lint_module(include_str!("../fixtures/d008_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d008_suppressed.rs")).is_empty());
}

#[test]
fn d009_fixtures() {
    let v = lint_module(include_str!("../fixtures/d009_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D009, 4), (Rule::D009, 5), (Rule::D009, 9)]);
    assert!(lint_module(include_str!("../fixtures/d009_clean.rs")).is_empty());
    assert!(lint_module(include_str!("../fixtures/d009_suppressed.rs")).is_empty());
}

#[test]
fn d010_fixtures() {
    let v = lint_hot_path(include_str!("../fixtures/d010_violating.rs"));
    assert_eq!(
        rule_lines(&v),
        vec![(Rule::D010, 1), (Rule::D010, 2), (Rule::D010, 5), (Rule::D010, 6)]
    );
    assert!(lint_hot_path(include_str!("../fixtures/d010_clean.rs")).is_empty());
    assert!(lint_hot_path(include_str!("../fixtures/d010_suppressed.rs")).is_empty());
    // The same locks outside a hot-path crate are not D010's business.
    assert!(lint_module(include_str!("../fixtures/d010_violating.rs")).is_empty());
}

#[test]
fn d011_fixtures() {
    // With the real registry installed: the unregistered knob and the
    // non-literal read still fail, the registered knob passes.
    let v = lint_with_registry(include_str!("../fixtures/d011_violating.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::D011, 2), (Rule::D011, 6)]);
    assert!(lint_with_registry(include_str!("../fixtures/d011_clean.rs")).is_empty());
    assert!(lint_with_registry(include_str!("../fixtures/d011_suppressed.rs")).is_empty());
    // Without any registry, even the shipped knob's read is undeclared.
    assert_eq!(
        rule_lines(&lint_module(include_str!("../fixtures/d011_clean.rs"))),
        vec![(Rule::D011, 2)]
    );
}

#[test]
fn p001_reasonless_pragma_reports_and_does_not_suppress() {
    let v = lint_module(include_str!("../fixtures/p001_reasonless.rs"));
    assert_eq!(rule_lines(&v), vec![(Rule::P001, 2), (Rule::D005, 3)]);
}

#[test]
fn diagnostics_carry_the_fixture_path() {
    let v = lint_module(include_str!("../fixtures/d005_violating.rs"));
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/model/src/fixture.rs:2: D005:"),
        "unexpected diagnostic format: {rendered}"
    );
}

/// The standing gate itself: the real workspace must lint clean. This is
/// the same invariant ci.sh enforces via the binary; failing here points
/// straight at the offending file:line.
#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let report = empower_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(report.ok(), "workspace has lint violations:\n{}", report.render_text());
}
