//! Proof that `empower_bench::parallel::run_indexed` is clean under the
//! concurrency rules *because it is sanctioned, not because it is
//! suppressed*: the file carries no `allow(..)` pragmas, the sanction
//! resolves to the item by path, and stripping the sanction makes D008
//! fire on the work cursor.

#![forbid(unsafe_code)]

use empower_lint::{lint_source_indexed, FileContext, Rule, WorkspaceIndex};

const PARALLEL_SRC: &str = include_str!("../../bench/src/parallel.rs");

fn parallel_ctx() -> FileContext {
    FileContext {
        path: "crates/bench/src/parallel.rs".to_string(),
        crate_name: "empower-bench".to_string(),
        is_crate_root: false,
        is_bin: false,
        is_scaffold: false,
    }
}

#[test]
fn run_indexed_is_pragma_free() {
    assert!(
        !PARALLEL_SRC.contains("empower-lint: allow"),
        "parallel.rs must not carry allow pragmas — its exemption is the sanction"
    );
}

#[test]
fn the_sanction_resolves_to_run_indexed_by_path() {
    let mut index = WorkspaceIndex::default();
    let p001 = index.add_file(&parallel_ctx(), PARALLEL_SRC);
    assert!(p001.is_empty(), "sanction pragma must be well-formed: {p001:?}");
    for rule in [Rule::D007, Rule::D008] {
        let s = index.sanctioned_idiom(rule).unwrap_or_else(|| panic!("{rule} sanction"));
        assert_eq!(s.item, "empower_bench::parallel::run_indexed");
        assert!(!s.reason.is_empty());
    }
}

#[test]
fn run_indexed_lints_clean_under_the_concurrency_rules() {
    let mut index = WorkspaceIndex::default();
    index.add_file(&parallel_ctx(), PARALLEL_SRC);
    let violations = lint_source_indexed(&parallel_ctx(), PARALLEL_SRC, &index);
    assert!(violations.is_empty(), "parallel.rs must lint clean: {violations:#?}");
}

#[test]
fn stripping_the_sanction_makes_d008_fire() {
    // Same file, sanction disabled: the Relaxed work cursor is now an
    // ordinary violation — proof the exemption comes from the sanction
    // machinery, not from a blind spot.
    let stripped = PARALLEL_SRC.replace("empower-lint: sanction", "empower-lint-disabled:");
    let mut index = WorkspaceIndex::default();
    let p001 = index.add_file(&parallel_ctx(), &stripped);
    assert!(p001.is_empty(), "the disabled tag must not parse as a pragma");
    let violations = lint_source_indexed(&parallel_ctx(), &stripped, &index);
    assert_eq!(
        violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
        vec![Rule::D008],
        "expected exactly the work-cursor D008: {violations:#?}"
    );
}
