use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
    let _ = thread::spawn(|| {});
}

pub fn qualified() {
    std::thread::spawn(|| {});
}
