pub fn get(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("set")
}

pub fn boom() {
    panic!("unreachable by construction")
}
