use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
