// empower-lint: allow(D001) — fixture: keys-only lookup, order never escapes
use std::collections::HashMap;

pub struct Table {
    // empower-lint: allow(D001) — fixture: membership checks only
    pub map: HashMap<u32, u32>,
}
