use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub fn merge_by_index(n: usize) -> Vec<usize> {
    let slots: Vec<Mutex<Option<usize>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        s.spawn(|| loop {
            let i = cursor.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            if let Ok(mut slot) = slots[i].lock() {
                *slot = Some(i);
            }
        });
    });
    slots.into_iter().map(|s| s.into_inner().ok().flatten().unwrap_or(0)).collect()
}
