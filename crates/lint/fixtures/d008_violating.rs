use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn exchange(c: &AtomicUsize) -> usize {
    c.swap(7, Ordering::Relaxed)
}
