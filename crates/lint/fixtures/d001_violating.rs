use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}
