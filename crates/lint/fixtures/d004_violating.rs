pub fn largest(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())
}
