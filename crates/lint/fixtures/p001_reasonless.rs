pub fn get(x: Option<u32>) -> u32 {
    // empower-lint: allow(D005)
    x.unwrap()
}
