pub fn skip_timing() -> bool {
    std::env::var_os("EMPOWER_SIM_SKIP_TIMING").is_some()
}

pub fn unrelated() -> Option<String> {
    std::env::var("PATH").ok()
}
