//! A crate root that forgot to forbid unsafe code.

pub fn noop() {}
