// empower-lint: allow(D006) — fixture: FFI shim crate, unsafe is its job
//! A crate root exempted from the unsafe-code ban.

pub fn noop() {}
