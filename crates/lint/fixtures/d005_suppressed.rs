pub fn get(x: Option<u32>) -> u32 {
    // empower-lint: allow(D005) — fixture: caller contract guarantees Some
    x.unwrap()
}
