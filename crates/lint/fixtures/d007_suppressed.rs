// empower-lint: allow-file(D007) — fixture exercising the file-wide escape hatch
use std::sync::mpsc;

pub fn chan() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}
