use std::thread;

pub fn joined() {
    let worker = thread::spawn(|| {});
    let _res = worker.join();
}

pub fn scoped(n: usize) {
    thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {});
        }
    });
}

pub fn chained() {
    std::thread::spawn(|| {}).join().ok();
}
