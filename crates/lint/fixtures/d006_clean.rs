#![forbid(unsafe_code)]
//! A well-formed crate root.

pub fn noop() {}
