pub fn largest(xs: &[f64]) -> Option<f64> {
    // empower-lint: allow(D004) — fixture: inputs are validated finite at
    // the API boundary
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())
}
