pub fn elapsed_virtual(now_secs: f64, start_secs: f64) -> f64 {
    now_secs - start_secs
}
