pub fn roll(seed: u64) -> u32 {
    let mut r = StdRng::seed_from_u64(seed);
    r.gen()
}
