pub fn elapsed_wall() {
    // empower-lint: allow(D002) — fixture: progress display only, never
    // feeds back into simulated state
    let t = std::time::Instant::now();
    let _ = t;
}
