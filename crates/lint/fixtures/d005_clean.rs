pub fn get(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn must(x: Option<u32>) -> Result<u32, MissingValue> {
    x.ok_or(MissingValue)
}

pub struct MissingValue;
