use std::sync::mpsc;
use std::sync::Mutex;

pub fn merge_by_completion(n: usize) -> Vec<usize> {
    let (tx, rx) = mpsc::channel();
    let out = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for i in 0..n {
            let tx = tx.clone();
            s.spawn(move || {
                let _ = tx.send(i);
                if let Ok(mut merged) = out.lock() {
                    merged.push(i);
                }
            });
        }
    });
    drop(tx);
    rx.iter().collect()
}
