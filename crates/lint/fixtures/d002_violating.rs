pub fn elapsed_wall() {
    let t = std::time::Instant::now();
    let _ = t;
}
