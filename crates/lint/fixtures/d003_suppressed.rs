pub fn roll() -> u32 {
    // empower-lint: allow(D003) — fixture: one-off salt for a log file
    // name, never reaches simulated state
    let mut r = thread_rng();
    r.gen()
}
