pub fn roll() -> u32 {
    let mut r = thread_rng();
    r.gen()
}
