pub fn largest(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}
