pub struct Shared {
    queue: Vec<u32>,
}

pub fn next(s: &mut Shared) -> Option<u32> {
    s.queue.pop()
}
