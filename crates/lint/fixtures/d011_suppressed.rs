pub fn experimental() -> Option<String> {
    // empower-lint: allow(D011) — fixture: pre-registration escape hatch for experiments
    std::env::var("EMPOWER_EXPERIMENTAL_KNOB").ok()
}
