// empower-lint: allow-file(D010) — config-time state only, never touched per event
use std::sync::Mutex;

pub struct Config {
    overrides: Mutex<Vec<u32>>,
}
