pub fn unregistered() -> Option<String> {
    std::env::var("EMPOWER_UNREGISTERED_KNOB").ok()
}

pub fn dynamic(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
