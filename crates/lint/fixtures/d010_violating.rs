use std::sync::Mutex;
use std::sync::RwLock;

pub struct Shared {
    queue: Mutex<Vec<u32>>,
    map: RwLock<Vec<u32>>,
}
