use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    // empower-lint: allow(D008) — counter is informational only, never ordered
    c.fetch_add(1, Ordering::Relaxed)
}
