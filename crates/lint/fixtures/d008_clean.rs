use std::sync::atomic::{AtomicUsize, Ordering};

pub fn read(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::AcqRel)
}
