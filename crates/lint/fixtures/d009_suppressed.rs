use std::thread;

pub fn detached_logger() {
    // empower-lint: allow(D009) — fixture: a daemon thread that never joins by design
    thread::spawn(|| {});
}
