//! The evaluation schemes of §5.1.
//!
//! | Scheme | Routing | CC | Mediums |
//! |---|---|---|---|
//! | EMPoWER | multipath (§3.2 tree) | yes | PLC + WiFi ch. 1 |
//! | SP | single path (§3.1) | yes | PLC + WiFi ch. 1 |
//! | SP-WiFi | single path | yes | WiFi ch. 1 |
//! | MP-WiFi | multipath | yes | WiFi ch. 1 |
//! | MP-mWiFi | multipath | yes | WiFi ch. 1 + ch. 2 |
//! | MP-w/o-CC | multipath | no (open loop) | PLC + WiFi ch. 1 |
//! | SP-w/o-CC | single path | no (open loop) | PLC + WiFi ch. 1 |
//! | MP-2bp | naive 2-shortest | yes | PLC + WiFi ch. 1 |
//!
//! "When using only WiFi, the CSC is set to 0" (§5.1) — single-medium
//! schemes cannot alternate technologies, so the switching incentive is
//! disabled for them.

use empower_model::{InterferenceMap, Medium, Network, NodeId};
use empower_routing::{
    best_combination, mp_2bp, single_path_route, CscMode, MultipathConfig, RouteQuery, RouteSet,
};

/// One of the paper's evaluation schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    Empower,
    Sp,
    SpWifi,
    MpWifi,
    MpMwifi,
    MpWoCc,
    SpWoCc,
    Mp2bp,
}

impl Scheme {
    /// All schemes, in the paper's listing order.
    pub const ALL: [Scheme; 8] = [
        Scheme::Empower,
        Scheme::Sp,
        Scheme::SpWifi,
        Scheme::MpWifi,
        Scheme::MpMwifi,
        Scheme::MpWoCc,
        Scheme::SpWoCc,
        Scheme::Mp2bp,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Empower => "EMPoWER",
            Scheme::Sp => "SP",
            Scheme::SpWifi => "SP-WiFi",
            Scheme::MpWifi => "MP-WiFi",
            Scheme::MpMwifi => "MP-mWiFi",
            Scheme::MpWoCc => "MP-w/o-CC",
            Scheme::SpWoCc => "SP-w/o-CC",
            Scheme::Mp2bp => "MP-2bp",
        }
    }

    /// Parses a paper label (as produced by [`Scheme::label`], matched
    /// case-insensitively) back into the scheme.
    pub fn from_label(label: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.label().eq_ignore_ascii_case(label))
    }

    /// Mediums the scheme may use.
    pub fn mediums(self) -> Vec<Medium> {
        match self {
            Scheme::Empower | Scheme::Sp | Scheme::MpWoCc | Scheme::SpWoCc | Scheme::Mp2bp => {
                vec![Medium::WIFI1, Medium::Plc]
            }
            Scheme::SpWifi | Scheme::MpWifi => vec![Medium::WIFI1],
            Scheme::MpMwifi => vec![Medium::WIFI1, Medium::WIFI2],
        }
    }

    /// True if the scheme runs the congestion controller.
    pub fn uses_cc(self) -> bool {
        !matches!(self, Scheme::MpWoCc | Scheme::SpWoCc)
    }

    /// True if the scheme may return several routes.
    pub fn multipath(self) -> bool {
        !matches!(self, Scheme::Sp | Scheme::SpWifi | Scheme::SpWoCc)
    }

    /// Channel-switching-cost policy for this scheme.
    pub fn csc(self) -> CscMode {
        if self.mediums().len() >= 2 {
            CscMode::Paper
        } else {
            CscMode::Zero
        }
    }

    /// Computes this scheme's routes for one flow. `n` is the `n-shortest`
    /// parameter (the paper uses 5).
    pub fn compute_routes(
        self,
        net: &Network,
        imap: &InterferenceMap,
        src: NodeId,
        dst: NodeId,
        n: usize,
    ) -> RouteSet {
        let query = RouteQuery::new(src, dst).with_mediums(&self.mediums());
        match self {
            Scheme::Sp | Scheme::SpWifi | Scheme::SpWoCc => {
                single_path_route(net, imap, &query, self.csc())
            }
            Scheme::Mp2bp => mp_2bp(net, imap, &query, self.csc()),
            _ => {
                let config =
                    MultipathConfig { n_shortest: n, csc: self.csc(), ..Default::default() };
                best_combination(net, imap, &query, &config)
            }
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn scheme_taxonomy_matches_the_paper() {
        assert!(Scheme::Empower.uses_cc() && Scheme::Empower.multipath());
        assert!(Scheme::Sp.uses_cc() && !Scheme::Sp.multipath());
        assert!(!Scheme::MpWoCc.uses_cc() && Scheme::MpWoCc.multipath());
        assert!(!Scheme::SpWoCc.uses_cc() && !Scheme::SpWoCc.multipath());
        assert_eq!(Scheme::MpMwifi.mediums(), vec![Medium::WIFI1, Medium::WIFI2]);
        assert_eq!(Scheme::SpWifi.mediums(), vec![Medium::WIFI1]);
    }

    #[test]
    fn wifi_only_schemes_disable_csc() {
        assert_eq!(Scheme::SpWifi.csc(), CscMode::Zero);
        assert_eq!(Scheme::MpWifi.csc(), CscMode::Zero);
        assert_eq!(Scheme::Empower.csc(), CscMode::Paper);
    }

    #[test]
    fn empower_finds_both_fig1_routes_but_spwifi_finds_one() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let emp = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        assert_eq!(emp.len(), 2);
        let spw = Scheme::SpWifi.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        assert_eq!(spw.len(), 1);
        // The WiFi-only single path must not touch PLC.
        for route in &spw.routes {
            for &l in route.path.links() {
                assert!(s.net.link(l).medium.is_wifi());
            }
        }
    }

    #[test]
    fn mp_wifi_on_one_channel_equals_single_path_capacity() {
        // §5.2.1: MP-WiFi coincides with SP-WiFi — multipath helps only
        // with ≥ 2 non-interfering technologies.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mp = Scheme::MpWifi.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let sp = Scheme::SpWifi.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        assert!((mp.total_rate() - sp.total_rate()).abs() < 1e-9);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scheme::Empower.to_string(), "EMPoWER");
        assert_eq!(Scheme::Mp2bp.to_string(), "MP-2bp");
        assert_eq!(Scheme::ALL.len(), 8);
    }
}
