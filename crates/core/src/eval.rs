//! Fast slotted evaluation of a scheme on a topology (the §5 methodology).
//!
//! For congestion-controlled schemes this runs the actual multipath
//! controller of §4.3 against the airtime model until it settles — exactly
//! what the paper's simulator measures once the MAC is abstracted to
//! perfect-sensing CSMA. For the w/o-CC schemes it computes delivered
//! goodput with the fluid saturation model (open-loop injection at each
//! route's standalone capacity, which ignores that the routes share
//! airtime — the mistake congestion control exists to fix).

use empower_baselines::saturation_goodput;
use empower_cc::{
    slots_to_converge, CcConfig, CcProblem, ConvergenceCriterion, MultipathController,
    ProportionalFair, Utility,
};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_telemetry::{CounterType, Telemetry};

use crate::scheme::Scheme;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FluidEval {
    /// Controller slots to run (100 ms each in wall-clock terms).
    pub slots: usize,
    /// `n-shortest` parameter for route computation.
    pub n_shortest: usize,
    /// Constraint margin δ.
    pub delta: f64,
    /// Controller configuration (α, gain).
    pub cc: CcConfig,
}

impl Default for FluidEval {
    fn default() -> Self {
        FluidEval { slots: 3000, n_shortest: 5, delta: 0.0, cc: CcConfig::default() }
    }
}

/// Outcome of a fluid evaluation.
#[derive(Debug, Clone)]
pub struct FluidEvalResult {
    /// Final rate per flow, Mbps (0 for disconnected flows).
    pub flow_rates: Vec<f64>,
    /// Aggregate proportional-fair utility `Σ log(1 + x_f)`.
    pub utility: f64,
    /// Per-slot total-rate trajectory of each flow (empty for w/o-CC
    /// schemes, which have no dynamics).
    pub trajectories: Vec<Vec<f64>>,
    /// Slots to reach the §5.2.2 steady-state criterion, per flow
    /// (`None` = never settled or no dynamics).
    pub convergence_slots: Vec<Option<usize>>,
    /// Number of routes used per flow.
    pub route_counts: Vec<usize>,
}

/// Registers the per-flow route gauges and the flow-count summary.
fn record_route_counts(tele: &Telemetry, route_counts: &[usize], connected: usize) {
    if !tele.is_enabled() {
        return;
    }
    tele.counter("eval/flows", CounterType::Gauge).set(route_counts.len() as u64);
    tele.counter("eval/connected_flows", CounterType::Gauge).set(connected as u64);
    for (f, &n) in route_counts.iter().enumerate() {
        tele.counter(format!("flow/{f}/routes"), CounterType::Gauge).set(n as u64);
    }
}

/// The engine behind [`crate::RunConfig::evaluate_fluid`]: instruments the
/// run on `tele` (per-flow route gauges, controller price/violation totals,
/// convergence slots) with the virtual clock following the slot index.
pub(crate) fn evaluate_fluid_impl(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId)],
    scheme: Scheme,
    params: &FluidEval,
    tele: &Telemetry,
) -> FluidEvalResult {
    // Route computation per flow; disconnected flows keep rate 0.
    let route_sets: Vec<_> = flows
        .iter()
        .map(|&(s, d)| scheme.compute_routes(net, imap, s, d, params.n_shortest))
        .collect();
    let route_counts: Vec<usize> = route_sets.iter().map(|r| r.len()).collect();
    let connected: Vec<usize> = (0..flows.len()).filter(|&f| !route_sets[f].is_empty()).collect();
    record_route_counts(tele, &route_counts, connected.len());

    let mut flow_rates = vec![0.0; flows.len()];
    let mut trajectories = vec![Vec::new(); flows.len()];
    let mut convergence = vec![None; flows.len()];

    if !connected.is_empty() {
        if scheme.uses_cc() {
            let flow_routes: Vec<Vec<empower_model::Path>> =
                connected.iter().map(|&f| route_sets[f].paths()).collect();
            let problem = CcProblem::new(net, imap, flow_routes);
            let config = CcConfig { delta: params.delta, ..params.cc };
            let mut controller = MultipathController::new(&problem, ProportionalFair, config);
            let traj = controller.run_trajectory(&problem, imap, params.slots);
            tele.set_now(params.slots as f64);
            tele.counter("cc/price_updates", CounterType::Packets).add(controller.price_updates());
            tele.counter("cc/margin_violations", CounterType::Errors)
                .add(controller.margin_violations());
            let finals = problem.flow_rates(controller.rates());
            for (ci, &f) in connected.iter().enumerate() {
                flow_rates[f] = finals[ci];
                trajectories[f] = traj.iter().map(|slot| slot[ci]).collect();
                convergence[f] =
                    slots_to_converge(&trajectories[f], ConvergenceCriterion::default());
                if let Some(slots) = convergence[f] {
                    tele.counter(format!("flow/{f}/convergence_slots"), CounterType::Gauge)
                        .set(slots as u64);
                }
            }
        } else {
            // Open loop: every route driven at its standalone R(P).
            let mut paths = Vec::new();
            let mut offered = Vec::new();
            let mut owners = Vec::new();
            for &f in &connected {
                for route in &route_sets[f].routes {
                    paths.push(route.path.clone());
                    offered.push(route.path.capacity(net, imap));
                    owners.push(f);
                }
            }
            let outcome = saturation_goodput(net, imap, &paths, &offered);
            for (i, &f) in owners.iter().enumerate() {
                flow_rates[f] += outcome.delivered[i];
            }
        }
    }
    let pf = ProportionalFair;
    let utility = flow_rates.iter().map(|&x| pf.value(x)).sum();
    FluidEvalResult {
        flow_rates,
        utility,
        trajectories,
        convergence_slots: convergence,
        route_counts,
    }
}

/// Computes the *equilibrium* of a scheme directly: the §4 controller
/// provably converges to the maximizer of `Σ U_f` over constraint (2)
/// restricted to the scheme's routes, so for steady-state statistics
/// (Figs. 4–7) we can solve that program with Frank–Wolfe instead of
/// iterating thousands of controller slots per topology. w/o-CC schemes are
/// evaluated with the saturation model exactly as in
/// [`crate::RunConfig::evaluate_fluid`].
///
/// The engine behind [`crate::RunConfig::evaluate_equilibrium`].
pub(crate) fn evaluate_equilibrium_impl(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId)],
    scheme: Scheme,
    params: &FluidEval,
    tele: &Telemetry,
) -> FluidEvalResult {
    if !scheme.uses_cc() {
        return evaluate_fluid_impl(net, imap, flows, scheme, params, tele);
    }
    let route_sets: Vec<_> = flows
        .iter()
        .map(|&(s, d)| scheme.compute_routes(net, imap, s, d, params.n_shortest))
        .collect();
    let route_counts: Vec<usize> = route_sets.iter().map(|r| r.len()).collect();
    let connected: Vec<usize> = (0..flows.len()).filter(|&f| !route_sets[f].is_empty()).collect();
    record_route_counts(tele, &route_counts, connected.len());
    let mut flow_rates = vec![0.0; flows.len()];
    if !connected.is_empty() {
        let flow_routes: Vec<Vec<empower_model::Path>> =
            connected.iter().map(|&f| route_sets[f].paths()).collect();
        let problem = CcProblem::new(net, imap, flow_routes);
        let region = empower_baselines::CapacityRegion::build(
            &problem,
            imap,
            empower_baselines::RegionKind::Conservative,
            params.delta,
        );
        let sol = empower_baselines::maximize_utility(&problem, &region, &ProportionalFair, 300);
        for (ci, &f) in connected.iter().enumerate() {
            flow_rates[f] = sol.flow_rates[ci];
        }
    }
    let pf = ProportionalFair;
    let utility = flow_rates.iter().map(|&x| pf.value(x)).sum();
    FluidEvalResult {
        flow_rates,
        utility,
        trajectories: vec![Vec::new(); flows.len()],
        convergence_slots: vec![None; flows.len()],
        route_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use empower_model::rng::SeedableRng;
    use empower_model::rng::StdRng;
    use empower_model::topology::{fig1_scenario, residential};
    use empower_model::{CarrierSense, InterferenceModel, SharedMedium};

    fn fluid(
        net: &Network,
        imap: &InterferenceMap,
        flows: &[(NodeId, NodeId)],
        scheme: Scheme,
    ) -> FluidEvalResult {
        RunConfig::new(scheme).evaluate_fluid(net, imap, flows).unwrap()
    }

    fn equilibrium(
        net: &Network,
        imap: &InterferenceMap,
        flows: &[(NodeId, NodeId)],
        scheme: Scheme,
    ) -> FluidEvalResult {
        RunConfig::new(scheme).evaluate_equilibrium(net, imap, flows).unwrap()
    }

    #[test]
    fn empower_beats_single_path_on_fig1() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows = [(s.gateway, s.client)];
        let emp = fluid(&s.net, &imap, &flows, Scheme::Empower);
        let sp = fluid(&s.net, &imap, &flows, Scheme::Sp);
        assert!((emp.flow_rates[0] - 50.0 / 3.0).abs() < 0.3, "{}", emp.flow_rates[0]);
        assert!((sp.flow_rates[0] - 10.0).abs() < 0.3, "{}", sp.flow_rates[0]);
        // 66 % gain, matching the §1 example.
        let gain = emp.flow_rates[0] / sp.flow_rates[0];
        assert!((gain - 5.0 / 3.0).abs() < 0.08, "gain {gain}");
    }

    #[test]
    fn convergence_is_order_100_slots() {
        // §5.2.2 reports ~90 slots to steady state.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let emp = fluid(&s.net, &imap, &[(s.gateway, s.client)], Scheme::Empower);
        let slots = emp.convergence_slots[0].expect("converges");
        assert!(slots < 1000, "converged in {slots} slots");
    }

    #[test]
    fn disconnected_flow_rates_are_zero() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        // PLC-only scheme cannot reach the WiFi-only client... use SP-WiFi
        // with a flow from client to gateway but WiFi removed? Simpler:
        // flow to a node with no common medium does not exist in fig1, so
        // kill the WiFi links instead.
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            let id = empower_model::LinkId(l as u32);
            if net.link(id).medium.is_wifi() {
                net.set_capacity(id, 0.0);
            }
        }
        let out = fluid(&net, &imap, &[(s.gateway, s.client)], Scheme::SpWifi);
        assert_eq!(out.flow_rates[0], 0.0);
        assert_eq!(out.route_counts[0], 0);
    }

    #[test]
    fn without_cc_is_never_better_on_fig1() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows = [(s.gateway, s.client)];
        let with = fluid(&s.net, &imap, &flows, Scheme::Empower);
        let without = fluid(&s.net, &imap, &flows, Scheme::MpWoCc);
        assert!(with.flow_rates[0] > without.flow_rates[0] - 1e-6);
    }

    #[test]
    fn three_flow_utility_is_finite_and_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = residential(&mut rng);
        let imap = CarrierSense::default().build_map(&topo.net);
        let flows: Vec<_> = (0..3).map(|_| topo.sample_flow(&mut rng)).collect();
        let out = fluid(&topo.net, &imap, &flows, Scheme::Empower);
        assert!(out.utility.is_finite());
        assert!(out.flow_rates.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn mwifi_doubles_single_channel_wifi() {
        // §5.2.1: T_MP-mWiFi = 2 · T_SP-WiFi (identical mirrored channels).
        let mut rng = StdRng::seed_from_u64(3);
        let topo = residential(&mut rng);
        let imap = CarrierSense::default().build_map(&topo.net);
        let flows = [topo.sample_flow(&mut rng)];
        let one = equilibrium(&topo.net, &imap, &flows, Scheme::SpWifi);
        let two = equilibrium(&topo.net, &imap, &flows, Scheme::MpMwifi);
        assert!(one.flow_rates[0] > 0.5, "seed 3 pair is connected");
        let ratio = two.flow_rates[0] / one.flow_rates[0];
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn equilibrium_matches_the_dynamic_controller() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows = [(s.gateway, s.client)];
        let dynamic = fluid(&s.net, &imap, &flows, Scheme::Empower);
        let eq = equilibrium(&s.net, &imap, &flows, Scheme::Empower);
        assert!(
            (dynamic.flow_rates[0] - eq.flow_rates[0]).abs() < 0.3,
            "{} vs {}",
            dynamic.flow_rates[0],
            eq.flow_rates[0]
        );
    }
}
