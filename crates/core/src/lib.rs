//! # empower-core
//!
//! The public facade of the EMPoWER reproduction. It ties together the
//! subsystem crates and exposes:
//!
//! * [`Scheme`] — the eight evaluation schemes of §5.1 (EMPoWER, SP,
//!   SP-WiFi, MP-WiFi, MP-mWiFi, MP-w/o-CC, SP-w/o-CC, MP-2bp) as a single
//!   configuration switch that selects mediums, routing flavour,
//!   channel-switching cost and congestion control;
//! * [`evaluate_fluid`] — the fast slotted-controller evaluation used for
//!   the 1000-run CDF sweeps of §5 (Figs. 4–7);
//! * [`build_simulation`] — wiring a scheme into the packet-level
//!   discrete-event simulator of `empower-sim` for testbed-style runs (§6);
//! * re-exports of the subsystem crates under stable names.
//!
//! ## Quickstart
//!
//! ```
//! use empower_core::{evaluate_fluid, FluidEval, Scheme};
//! use empower_core::model::topology::fig1_scenario;
//! use empower_core::model::{InterferenceModel, SharedMedium};
//!
//! let s = fig1_scenario();
//! let imap = SharedMedium.build_map(&s.net);
//! let eval = evaluate_fluid(
//!     &s.net,
//!     &imap,
//!     &[(s.gateway, s.client)],
//!     Scheme::Empower,
//!     &FluidEval::default(),
//! );
//! // The paper's worked example: 10 Mbps hybrid + 6.6 Mbps WiFi-WiFi.
//! assert!((eval.flow_rates[0] - 16.67).abs() < 0.3);
//! ```

pub mod eval;
pub mod monitor;
pub mod scheme;
pub mod stack;

pub use eval::{evaluate_equilibrium, evaluate_fluid, FluidEval, FluidEvalResult};
pub use monitor::{RecomputeReason, RouteMonitor};
pub use scheme::Scheme;
pub use stack::build_simulation;

/// Re-export: the network-model substrate.
pub use empower_baselines as baselines;
pub use empower_cc as cc;
pub use empower_datapath as datapath;
pub use empower_model as model;
pub use empower_routing as routing;
pub use empower_sim as sim;
