#![forbid(unsafe_code)]
//! # empower-core
//!
//! The public facade of the EMPoWER reproduction. It ties together the
//! subsystem crates and exposes:
//!
//! * [`Scheme`] — the eight evaluation schemes of §5.1 (EMPoWER, SP,
//!   SP-WiFi, MP-WiFi, MP-mWiFi, MP-w/o-CC, SP-w/o-CC, MP-2bp) as a single
//!   configuration switch that selects mediums, routing flavour,
//!   channel-switching cost and congestion control;
//! * [`RunConfig`] — the typed run builder: scheme, `n`-shortest, δ,
//!   controller gains and an optional [`telemetry::Telemetry`] registry,
//!   with `Result`-typed entry points ([`EmpowerError`]) for route
//!   computation, fluid/equilibrium evaluation (§5, Figs. 4–7),
//!   packet-level simulation (§6) and route monitoring (§3.2);
//! * re-exports of the subsystem crates under stable names.
//!
//! ## Quickstart
//!
//! ```
//! use empower_core::{RunConfig, Scheme};
//! use empower_core::model::topology::fig1_scenario;
//! use empower_core::model::{InterferenceModel, SharedMedium};
//!
//! let s = fig1_scenario();
//! let imap = SharedMedium.build_map(&s.net);
//! let eval = RunConfig::new(Scheme::Empower)
//!     .evaluate_fluid(&s.net, &imap, &[(s.gateway, s.client)])
//!     .unwrap();
//! // The paper's worked example: 10 Mbps hybrid + 6.6 Mbps WiFi-WiFi.
//! assert!((eval.flow_rates[0] - 16.67).abs() < 0.3);
//! ```

pub mod eval;
pub mod monitor;
pub mod run;
pub mod scheme;
pub mod stack;

pub use eval::{FluidEval, FluidEvalResult};
pub use monitor::{RecomputeReason, RouteMonitor};
pub use run::{EmpowerError, RunConfig};
pub use scheme::Scheme;

/// Re-export: the network-model substrate.
pub use empower_baselines as baselines;
pub use empower_cc as cc;
pub use empower_datapath as datapath;
pub use empower_model as model;
pub use empower_routing as routing;
pub use empower_sim as sim;
pub use empower_telemetry as telemetry;
