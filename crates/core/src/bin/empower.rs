//! `empower` — command-line front end to the reproduction.
//!
//! ```text
//! empower topology residential --seed 7        # generate + print a topology
//! empower routes   residential --seed 7 0 3    # EMPoWER's route combination
//! empower evaluate residential --seed 7 0 3    # all 8 schemes, equilibrium
//! empower simulate residential --seed 7 0 3    # packet-level run (300 s)
//! empower topology testbed                     # the simulated 22-node floor
//! ```
//!
//! `evaluate` and `simulate` accept `--metrics <path>`: a run manifest
//! (seed, parameters, full counter snapshot) is written there, byte-
//! identical across same-seed runs.

use empower_core::model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_core::model::topology::testbed22;
use empower_core::model::{CarrierSense, InterferenceMap, InterferenceModel, Network, NodeId};
use empower_core::sim::{SimConfig, TrafficPattern};
use empower_core::telemetry::{Manifest, Telemetry};
use empower_core::{RunConfig, Scheme};
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;

fn usage() -> ! {
    eprintln!(
        "usage: empower <topology|routes|evaluate|simulate> <residential|enterprise|testbed> \
         [--seed S] [--metrics PATH] [src dst]"
    );
    std::process::exit(2)
}

struct Args {
    command: String,
    class: String,
    seed: u64,
    metrics: Option<String>,
    endpoints: Option<(u32, u32)>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut seed = 1u64;
    let mut metrics = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--seed" {
            i += 1;
            seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
        } else if argv[i] == "--metrics" {
            i += 1;
            metrics = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
        } else {
            positional.push(argv[i].clone());
        }
        i += 1;
    }
    if positional.len() < 2 {
        usage();
    }
    let endpoints = if positional.len() >= 4 {
        match (positional[2].parse(), positional[3].parse()) {
            (Ok(a), Ok(b)) => Some((a, b)),
            _ => usage(),
        }
    } else {
        None
    };
    Args { command: positional[0].clone(), class: positional[1].clone(), seed, metrics, endpoints }
}

/// Writes the manifest if `--metrics` was given.
fn maybe_write_manifest(args: &Args, experiment: &str, tele: &Telemetry) {
    let Some(path) = &args.metrics else { return };
    let mut m = Manifest::new(experiment);
    m.set("class", args.class.as_str()).set("seed", args.seed).attach_counters(tele);
    if let Err(e) = m.write(path) {
        eprintln!("cannot write metrics to {path}: {e}");
        std::process::exit(1);
    }
}

fn build(class: &str, seed: u64) -> (Network, InterferenceMap) {
    let net = match class {
        "residential" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential)).net
        }
        "enterprise" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise)).net
        }
        "testbed" => testbed22(seed).net,
        _ => usage(),
    };
    let imap = CarrierSense::default().build_map(&net);
    (net, imap)
}

fn main() {
    let args = parse_args();
    let (net, imap) = build(&args.class, args.seed);
    match args.command.as_str() {
        "topology" => {
            println!("{} topology, seed {}", args.class, args.seed);
            println!("{} nodes, {} directed links", net.node_count(), net.link_count());
            for n in net.nodes() {
                let mediums: Vec<String> = n.mediums.iter().map(|m| m.label()).collect();
                println!(
                    "  {}  ({:>5.1},{:>5.1})  [{}]",
                    n.id,
                    n.pos.x,
                    n.pos.y,
                    mediums.join("+")
                );
            }
            for l in net.links().iter().filter(|l| l.from < l.to) {
                println!(
                    "  {} <-> {}  {:<6} {:>6.1} Mbps",
                    l.from,
                    l.to,
                    l.medium.label(),
                    l.capacity_mbps
                );
            }
        }
        "routes" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let routes = Scheme::Empower.compute_routes(&net, &imap, NodeId(s), NodeId(d), 5);
            if routes.is_empty() {
                println!("n{s} and n{d} are not connected on PLC/WiFi");
                return;
            }
            println!("EMPoWER combination for n{s} → n{d}:");
            for r in &routes.routes {
                println!("  {}   R(P) = {:.1} Mbps", r.path.render(&net), r.nominal_rate);
            }
            println!("total nominal capacity: {:.1} Mbps", routes.total_rate());
        }
        "evaluate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let tele =
                if args.metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
            println!("{:<12} {:>10}", "scheme", "Mbps");
            let mut rates = Vec::new();
            for scheme in Scheme::ALL {
                let out = RunConfig::new(scheme)
                    .telemetry(tele.clone())
                    .evaluate_equilibrium(&net, &imap, &[(NodeId(s), NodeId(d))])
                    .expect("tolerant mode cannot fail");
                println!("{:<12} {:>10.2}", scheme.label(), out.flow_rates[0]);
                rates.push((scheme.label(), out.flow_rates[0]));
            }
            if args.metrics.is_some() {
                // Counters aggregate across the eight schemes; the rates
                // themselves go in as manifest keys.
                for (label, rate) in &rates {
                    tele.counter(
                        format!("eval/{label}/mbps_x100"),
                        empower_core::telemetry::CounterType::Gauge,
                    )
                    .set((rate * 100.0).round() as u64);
                }
            }
            maybe_write_manifest(&args, "evaluate", &tele);
        }
        "simulate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let tele =
                if args.metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
            let flows =
                [(NodeId(s), NodeId(d), TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
            let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
                .telemetry(tele.clone())
                .build_simulation(
                    &net,
                    &imap,
                    &flows,
                    SimConfig { seed: args.seed, ..Default::default() },
                )
                .expect("tolerant mode cannot fail");
            let Some(f) = mapping[0] else {
                println!("n{s} and n{d} are not connected");
                return;
            };
            let report = sim.run(300.0);
            println!(
                "300 s packet-level run: {:.1} Mbps final ({} frames delivered, {} lost)",
                report.final_throughput(f, 10),
                report.flows[f].delivered_bits / SimConfig::default().frame_bits,
                report.flows[f].declared_lost,
            );
            maybe_write_manifest(&args, "simulate", &tele);
        }
        _ => usage(),
    }
}
