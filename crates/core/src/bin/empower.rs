//! `empower` — command-line front end to the reproduction.
//!
//! ```text
//! empower topology residential --seed 7        # generate + print a topology
//! empower routes   residential --seed 7 0 3    # EMPoWER's route combination
//! empower evaluate residential --seed 7 0 3    # all 8 schemes, equilibrium
//! empower simulate residential --seed 7 0 3    # packet-level run (300 s)
//! empower topology testbed                     # the simulated 22-node floor
//! ```

use empower_core::model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_core::model::topology::testbed22;
use empower_core::model::{CarrierSense, InterferenceMap, InterferenceModel, Network, NodeId};
use empower_core::sim::{SimConfig, TrafficPattern};
use empower_core::{build_simulation, evaluate_equilibrium, FluidEval, Scheme};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn usage() -> ! {
    eprintln!(
        "usage: empower <topology|routes|evaluate|simulate> <residential|enterprise|testbed> \
         [--seed S] [src dst]"
    );
    std::process::exit(2)
}

struct Args {
    command: String,
    class: String,
    seed: u64,
    endpoints: Option<(u32, u32)>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut seed = 1u64;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--seed" {
            i += 1;
            seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
        } else {
            positional.push(argv[i].clone());
        }
        i += 1;
    }
    if positional.len() < 2 {
        usage();
    }
    let endpoints = if positional.len() >= 4 {
        match (positional[2].parse(), positional[3].parse()) {
            (Ok(a), Ok(b)) => Some((a, b)),
            _ => usage(),
        }
    } else {
        None
    };
    Args { command: positional[0].clone(), class: positional[1].clone(), seed, endpoints }
}

fn build(class: &str, seed: u64) -> (Network, InterferenceMap) {
    let net = match class {
        "residential" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential)).net
        }
        "enterprise" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise)).net
        }
        "testbed" => testbed22(seed).net,
        _ => usage(),
    };
    let imap = CarrierSense::default().build_map(&net);
    (net, imap)
}

fn main() {
    let args = parse_args();
    let (net, imap) = build(&args.class, args.seed);
    match args.command.as_str() {
        "topology" => {
            println!("{} topology, seed {}", args.class, args.seed);
            println!("{} nodes, {} directed links", net.node_count(), net.link_count());
            for n in net.nodes() {
                let mediums: Vec<String> = n.mediums.iter().map(|m| m.label()).collect();
                println!("  {}  ({:>5.1},{:>5.1})  [{}]", n.id, n.pos.x, n.pos.y, mediums.join("+"));
            }
            for l in net.links().iter().filter(|l| l.from < l.to) {
                println!(
                    "  {} <-> {}  {:<6} {:>6.1} Mbps",
                    l.from,
                    l.to,
                    l.medium.label(),
                    l.capacity_mbps
                );
            }
        }
        "routes" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let routes = Scheme::Empower.compute_routes(&net, &imap, NodeId(s), NodeId(d), 5);
            if routes.is_empty() {
                println!("n{s} and n{d} are not connected on PLC/WiFi");
                return;
            }
            println!("EMPoWER combination for n{s} → n{d}:");
            for r in &routes.routes {
                println!("  {}   R(P) = {:.1} Mbps", r.path.render(&net), r.nominal_rate);
            }
            println!("total nominal capacity: {:.1} Mbps", routes.total_rate());
        }
        "evaluate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            println!("{:<12} {:>10}", "scheme", "Mbps");
            for scheme in Scheme::ALL {
                let out = evaluate_equilibrium(
                    &net,
                    &imap,
                    &[(NodeId(s), NodeId(d))],
                    scheme,
                    &FluidEval::default(),
                );
                println!("{:<12} {:>10.2}", scheme.label(), out.flow_rates[0]);
            }
        }
        "simulate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let flows = [(
                NodeId(s),
                NodeId(d),
                TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 },
            )];
            let (mut sim, mapping) = build_simulation(
                &net,
                &imap,
                &flows,
                Scheme::Empower,
                SimConfig { seed: args.seed, ..Default::default() },
            );
            let Some(f) = mapping[0] else {
                println!("n{s} and n{d} are not connected");
                return;
            };
            let report = sim.run(300.0);
            println!(
                "300 s packet-level run: {:.1} Mbps final ({} frames delivered, {} lost)",
                report.final_throughput(f, 10),
                report.flows[f].delivered_bits / SimConfig::default().frame_bits,
                report.flows[f].declared_lost,
            );
        }
        _ => usage(),
    }
}
