//! Route-recomputation triggering (§3.2).
//!
//! "The routes need to be recomputed only when there is a link failure or a
//! large capacity variation, which occurs infrequently (order of minutes or
//! hours)." The congestion controller absorbs everything smaller. This
//! module watches a flow's routes against fresh capacity estimates and says
//! when the ~50 ms recomputation is worth paying.

use empower_model::{InterferenceMap, Network, NodeId};
use empower_routing::RouteSet;
use empower_telemetry::{CounterType, Telemetry};

use crate::run::EmpowerError;
use crate::scheme::Scheme;

/// Why the monitor asked for new routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeReason {
    /// A link on one of the flow's routes died.
    LinkFailure,
    /// A link's capacity moved by more than the configured fraction.
    CapacityShift,
}

impl RecomputeReason {
    /// Stable lowercase label used in counter names.
    pub fn label(self) -> &'static str {
        match self {
            RecomputeReason::LinkFailure => "link_failure",
            RecomputeReason::CapacityShift => "capacity_shift",
        }
    }
}

/// Watches one flow's routes.
#[derive(Debug, Clone)]
pub struct RouteMonitor {
    src: NodeId,
    dst: NodeId,
    scheme: Scheme,
    /// The `n`-shortest parameter recomputation uses (matches whatever the
    /// original routes were computed with).
    n_shortest: usize,
    /// Relative capacity change that counts as "large" (0.5 = ±50 %).
    pub shift_threshold: f64,
    /// Capacities of the route links at the time the routes were computed.
    baseline: Vec<(empower_model::LinkId, f64)>,
    /// Recomputations are counted here by [`RecomputeReason`]
    /// (`monitor/recomputes/<reason>`); disabled by default.
    tele: Telemetry,
}

impl RouteMonitor {
    /// Starts monitoring `routes` as computed on `net`, with the default
    /// `n = 5` and no telemetry. Prefer [`crate::RunConfig::monitor`],
    /// which carries both from the run configuration.
    pub fn new(net: &Network, scheme: Scheme, src: NodeId, dst: NodeId, routes: &RouteSet) -> Self {
        Self::with_config(net, scheme, src, dst, routes, 5, Telemetry::disabled())
    }

    /// Starts monitoring with an explicit `n`-shortest parameter and
    /// telemetry registry.
    pub fn with_config(
        net: &Network,
        scheme: Scheme,
        src: NodeId,
        dst: NodeId,
        routes: &RouteSet,
        n_shortest: usize,
        tele: Telemetry,
    ) -> Self {
        let mut baseline = Vec::new();
        for r in &routes.routes {
            for &l in r.path.links() {
                if !baseline.iter().any(|&(id, _)| id == l) {
                    baseline.push((l, net.link(l).capacity_mbps));
                }
            }
        }
        RouteMonitor { src, dst, scheme, n_shortest, shift_threshold: 0.5, baseline, tele }
    }

    /// Checks the current network state; `Some(reason)` means recompute.
    ///
    /// # Panics
    /// Panics if a baseline link id does not exist in `net` (a baseline
    /// from a different network) — use [`RouteMonitor::try_check`] to get
    /// an [`EmpowerError::DeadLink`] instead.
    pub fn check(&self, net: &Network) -> Option<RecomputeReason> {
        // empower-lint: allow(D005) — documented panicking convenience
        // wrapper (see `# Panics` above); `try_check` is the fallible form.
        self.try_check(net).expect("baseline links exist in this network")
    }

    /// Checks the current network state without panicking on foreign
    /// baselines; `Ok(Some(reason))` means recompute.
    ///
    /// # Errors
    /// [`EmpowerError::DeadLink`] if a baseline link id does not resolve
    /// in `net`.
    pub fn try_check(&self, net: &Network) -> Result<Option<RecomputeReason>, EmpowerError> {
        for &(l, was) in &self.baseline {
            let link = net.try_link(l).ok_or(EmpowerError::DeadLink { link: l })?;
            if !link.is_alive() {
                return Ok(Some(RecomputeReason::LinkFailure));
            }
            let rel = (link.capacity_mbps - was).abs() / was.max(1e-9);
            if rel > self.shift_threshold {
                return Ok(Some(RecomputeReason::CapacityShift));
            }
        }
        Ok(None)
    }

    /// Re-samples the baseline from the current capacities of the links
    /// already being watched, in place. Call after the routes have been
    /// reinstalled by other means (e.g. the caller recomputed them itself,
    /// or decided to keep them through a shift): without it, the stale
    /// baseline re-reports the same shift on every subsequent
    /// [`RouteMonitor::check`]. Links that no longer resolve keep their old
    /// baseline so a later `check` still reports them.
    pub fn rearm(&mut self, net: &Network) {
        for (l, cap) in &mut self.baseline {
            if let Some(link) = net.try_link(*l) {
                *cap = link.capacity_mbps;
            }
        }
    }

    /// Recomputes the routes and re-baselines the monitor on them. Returns
    /// the new route set (possibly empty if the flow got disconnected).
    /// The configured [`RouteMonitor::shift_threshold`] is preserved.
    pub fn recompute(&mut self, net: &Network, imap: &InterferenceMap) -> RouteSet {
        let routes = self.scheme.compute_routes(net, imap, self.src, self.dst, self.n_shortest);
        let (n, tele, threshold) = (self.n_shortest, self.tele.clone(), self.shift_threshold);
        *self = RouteMonitor::with_config(net, self.scheme, self.src, self.dst, &routes, n, tele);
        self.shift_threshold = threshold;
        routes
    }

    /// Recomputes after a [`RecomputeReason`] (typically the one
    /// [`RouteMonitor::check`] returned), counting it under
    /// `monitor/recomputes/<reason>`.
    ///
    /// # Errors
    /// [`EmpowerError::Disconnected`] if the recomputed route set is empty
    /// — the flow no longer has any path under the scheme's media.
    pub fn recompute_after(
        &mut self,
        net: &Network,
        imap: &InterferenceMap,
        reason: RecomputeReason,
    ) -> Result<RouteSet, EmpowerError> {
        self.tele
            .counter(format!("monitor/recomputes/{}", reason.label()), CounterType::Packets)
            .inc();
        self.tele.event(
            "monitor",
            "recompute",
            &[
                ("reason", reason.label().into()),
                ("src", self.src.index().into()),
                ("dst", self.dst.index().into()),
            ],
        );
        let routes = self.recompute(net, imap);
        if routes.is_empty() {
            return Err(EmpowerError::Disconnected { flow: 0, src: self.src, dst: self.dst });
        }
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn quiet_network_triggers_nothing() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        assert_eq!(monitor.check(&s.net), None);
    }

    #[test]
    fn small_variation_is_absorbed_by_the_controller() {
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        s.net.set_capacity(s.wifi_bc, 30.0 * 0.8); // −20 %, below threshold
        assert_eq!(monitor.check(&s.net), None);
    }

    #[test]
    fn failure_triggers_and_recompute_drops_the_dead_route() {
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        assert_eq!(routes.len(), 2);
        let mut monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        s.net.set_capacity(s.plc_ab, 0.0);
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::LinkFailure));
        let new_routes = monitor.recompute(&s.net, &imap);
        assert_eq!(new_routes.len(), 1, "only the WiFi route survives");
        for r in &new_routes.routes {
            assert!(!r.path.uses_link(s.plc_ab));
        }
        // Re-baselined: no further trigger.
        assert_eq!(monitor.check(&s.net), None);
    }

    #[test]
    fn large_capacity_shift_triggers() {
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        s.net.set_capacity(s.wifi_bc, 5.0); // −83 %
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
    }

    #[test]
    fn off_route_links_are_ignored() {
        // A failure somewhere else in the network is not this flow's
        // problem — recomputation stays a rare event.
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        // Monitor only the single-path hybrid route.
        let routes = Scheme::Sp.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let monitor = RouteMonitor::new(&s.net, Scheme::Sp, s.gateway, s.client, &routes);
        let on_route = routes.routes[0].path.links().to_vec();
        // Kill some link not on the route.
        let victim = s.net.links().iter().map(|l| l.id).find(|l| !on_route.contains(l)).unwrap();
        s.net.set_capacity(victim, 0.0);
        assert_eq!(monitor.check(&s.net), None);
    }

    #[test]
    fn try_check_reports_foreign_baselines_as_dead_links() {
        use crate::run::EmpowerError;
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        // A network with no links at all: every baseline id is foreign.
        let empty = empower_model::NetworkBuilder::new().build();
        let err = monitor.try_check(&empty).unwrap_err();
        assert!(matches!(err, EmpowerError::DeadLink { .. }));
    }

    #[test]
    fn rearm_clears_a_stale_baseline_double_trigger() {
        // Regression: the baseline is sampled only at construction, so a
        // caller that handles a CapacityShift without calling recompute
        // (keeping its routes) used to get the *same* shift re-reported on
        // every subsequent check.
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let mut monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        s.net.set_capacity(s.wifi_bc, 5.0); // −83 %: triggers
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
        // Without rearm the stale baseline keeps firing.
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
        monitor.rearm(&s.net);
        assert_eq!(monitor.check(&s.net), None, "re-armed baseline is quiet");
        // And the new baseline is live: a further shift from 5 triggers.
        s.net.set_capacity(s.wifi_bc, 30.0);
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
    }

    #[test]
    fn recompute_preserves_a_customized_shift_threshold() {
        // Regression: recompute used to rebuild the monitor with the
        // default threshold, silently discarding the caller's setting.
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let mut monitor = RouteMonitor::new(&s.net, Scheme::Empower, s.gateway, s.client, &routes);
        monitor.shift_threshold = 0.1;
        s.net.set_capacity(s.wifi_bc, 30.0 * 0.8); // −20 %
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
        monitor.recompute(&s.net, &imap);
        assert!((monitor.shift_threshold - 0.1).abs() < 1e-12, "threshold survives recompute");
        assert_eq!(monitor.check(&s.net), None);
        s.net.set_capacity(s.wifi_bc, 30.0 * 0.8 * 0.85); // −15 % from new baseline
        assert_eq!(monitor.check(&s.net), Some(RecomputeReason::CapacityShift));
    }

    #[test]
    fn recompute_after_counts_by_reason() {
        let mut s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let tele = Telemetry::enabled();
        let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
        let mut monitor = RouteMonitor::with_config(
            &s.net,
            Scheme::Empower,
            s.gateway,
            s.client,
            &routes,
            5,
            tele.clone(),
        );
        s.net.set_capacity(s.plc_ab, 0.0);
        let reason = monitor.check(&s.net).expect("failure triggers");
        let new_routes = monitor.recompute_after(&s.net, &imap, reason).unwrap();
        assert_eq!(new_routes.len(), 1);
        assert_eq!(tele.snapshot().value("monitor/recomputes/link_failure"), Some(1));
        assert_eq!(tele.snapshot().value("monitor/recomputes/capacity_shift"), None);
    }
}
