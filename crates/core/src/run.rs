//! The typed run facade: [`RunConfig`] + [`EmpowerError`].
//!
//! A [`RunConfig`] bundles everything a scheme evaluation needs — the
//! [`Scheme`], the `n`-shortest route parameter, the constraint margin δ,
//! the controller configuration and an optional [`Telemetry`] registry —
//! and exposes `Result`-typed entry points for route computation, fluid /
//! equilibrium evaluation, packet-level simulation and route monitoring.
//!
//! ```
//! use empower_core::{RunConfig, Scheme};
//! use empower_core::model::topology::fig1_scenario;
//! use empower_core::model::{InterferenceModel, SharedMedium};
//!
//! let s = fig1_scenario();
//! let imap = SharedMedium.build_map(&s.net);
//! let run = RunConfig::new(Scheme::Empower);
//! let out = run.evaluate_fluid(&s.net, &imap, &[(s.gateway, s.client)]).unwrap();
//! assert!((out.flow_rates[0] - 50.0 / 3.0).abs() < 0.3);
//! ```

use empower_cc::CcConfig;
use empower_model::{InterferenceMap, LinkId, Network, NodeId};
use empower_routing::RouteSet;
use empower_sim::{SimConfig, Simulation, TrafficPattern};
use empower_telemetry::Telemetry;

use crate::eval::{evaluate_equilibrium_impl, evaluate_fluid_impl, FluidEval, FluidEvalResult};
use crate::monitor::RouteMonitor;
use crate::scheme::Scheme;
use crate::stack::build_simulation_impl;

/// Everything that can go wrong when driving a scheme end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmpowerError {
    /// A flow's endpoints have no route under the scheme's media
    /// restriction (or every candidate link is dead).
    Disconnected {
        /// Index of the flow in the caller's flow list.
        flow: usize,
        src: NodeId,
        dst: NodeId,
    },
    /// A link id did not resolve in the network it was looked up in —
    /// typically a stale baseline applied to a different network instance.
    DeadLink { link: LinkId },
}

impl std::fmt::Display for EmpowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmpowerError::Disconnected { flow, src, dst } => write!(
                f,
                "flow {flow} ({} -> {}) is disconnected under the scheme's media",
                src.index(),
                dst.index()
            ),
            EmpowerError::DeadLink { link } => {
                write!(f, "link {} does not exist in this network", link.0)
            }
        }
    }
}

impl std::error::Error for EmpowerError {}

/// A typed, buildable run configuration (supersedes the loose
/// `(scheme, FluidEval)` pairs of the v0 API).
///
/// Construction is infallible; the evaluation methods return
/// [`EmpowerError`] where the old API panicked or silently zeroed.
#[derive(Debug, Clone)]
pub struct RunConfig {
    scheme: Scheme,
    n_shortest: usize,
    delta: f64,
    slots: usize,
    cc: CcConfig,
    telemetry: Telemetry,
    strict_connectivity: bool,
}

impl RunConfig {
    /// A run of `scheme` with the paper defaults: `n = 5` shortest routes,
    /// δ = 0, 3000 controller slots, default controller gains, telemetry
    /// disabled, disconnected flows tolerated (rate 0 / skipped).
    pub fn new(scheme: Scheme) -> RunConfig {
        let d = FluidEval::default();
        RunConfig {
            scheme,
            n_shortest: d.n_shortest,
            delta: d.delta,
            slots: d.slots,
            cc: d.cc,
            telemetry: Telemetry::disabled(),
            strict_connectivity: false,
        }
    }

    /// Builds a config from a legacy [`FluidEval`] parameter struct —
    /// the migration path for v0 call sites that already carry one.
    pub fn from_fluid(scheme: Scheme, params: &FluidEval) -> RunConfig {
        RunConfig::new(scheme)
            .n_shortest(params.n_shortest)
            .delta(params.delta)
            .slots(params.slots)
            .cc(params.cc)
    }

    /// Sets the `n`-shortest route parameter (§3.2).
    pub fn n_shortest(mut self, n: usize) -> RunConfig {
        self.n_shortest = n;
        self
    }

    /// Sets the constraint margin δ (§4.3).
    pub fn delta(mut self, delta: f64) -> RunConfig {
        self.delta = delta;
        self
    }

    /// Sets the number of controller slots the fluid evaluation runs.
    pub fn slots(mut self, slots: usize) -> RunConfig {
        self.slots = slots;
        self
    }

    /// Sets the controller configuration (α, gain, boost cap). The margin
    /// δ set via [`RunConfig::delta`] wins over `cc.delta`.
    pub fn cc(mut self, cc: CcConfig) -> RunConfig {
        self.cc = cc;
        self
    }

    /// Attaches a telemetry registry: evaluations and simulations built
    /// from this config register and update their counters on it.
    pub fn telemetry(mut self, telemetry: Telemetry) -> RunConfig {
        self.telemetry = telemetry;
        self
    }

    /// Makes disconnected flows a hard [`EmpowerError::Disconnected`]
    /// instead of a tolerated rate-0 / skipped flow.
    pub fn strict_connectivity(mut self, strict: bool) -> RunConfig {
        self.strict_connectivity = strict;
        self
    }

    /// The scheme under evaluation.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The `n`-shortest parameter.
    pub fn n(&self) -> usize {
        self.n_shortest
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The legacy parameter struct this config corresponds to.
    pub fn fluid_params(&self) -> FluidEval {
        FluidEval { slots: self.slots, n_shortest: self.n_shortest, delta: self.delta, cc: self.cc }
    }

    /// Computes the scheme's route set for one flow.
    ///
    /// # Errors
    /// [`EmpowerError::Disconnected`] if no route exists (`flow` is 0 —
    /// use the error's `src`/`dst` to identify the pair).
    pub fn routes(
        &self,
        net: &Network,
        imap: &InterferenceMap,
        src: NodeId,
        dst: NodeId,
    ) -> Result<RouteSet, EmpowerError> {
        let routes = self.scheme.compute_routes(net, imap, src, dst, self.n_shortest);
        if routes.is_empty() {
            return Err(EmpowerError::Disconnected { flow: 0, src, dst });
        }
        Ok(routes)
    }

    /// Runs the §4.3 multipath controller (or the open-loop saturation
    /// model for w/o-CC schemes) on the fluid airtime model.
    ///
    /// # Errors
    /// [`EmpowerError::Disconnected`] for the first route-less flow when
    /// [`RunConfig::strict_connectivity`] is on; otherwise such flows
    /// simply score rate 0 as in the paper's figures.
    pub fn evaluate_fluid(
        &self,
        net: &Network,
        imap: &InterferenceMap,
        flows: &[(NodeId, NodeId)],
    ) -> Result<FluidEvalResult, EmpowerError> {
        let out = evaluate_fluid_impl(
            net,
            imap,
            flows,
            self.scheme,
            &self.fluid_params(),
            &self.telemetry,
        );
        self.check_connectivity(flows, &out)?;
        Ok(out)
    }

    /// Solves for the controller's equilibrium directly (Frank–Wolfe over
    /// the conservative region) — the fast path for steady-state figures.
    ///
    /// # Errors
    /// As [`RunConfig::evaluate_fluid`].
    pub fn evaluate_equilibrium(
        &self,
        net: &Network,
        imap: &InterferenceMap,
        flows: &[(NodeId, NodeId)],
    ) -> Result<FluidEvalResult, EmpowerError> {
        let out = evaluate_equilibrium_impl(
            net,
            imap,
            flows,
            self.scheme,
            &self.fluid_params(),
            &self.telemetry,
        );
        self.check_connectivity(flows, &out)?;
        Ok(out)
    }

    fn check_connectivity(
        &self,
        flows: &[(NodeId, NodeId)],
        out: &FluidEvalResult,
    ) -> Result<(), EmpowerError> {
        if self.strict_connectivity {
            if let Some(f) = out.route_counts.iter().position(|&c| c == 0) {
                return Err(EmpowerError::Disconnected {
                    flow: f,
                    src: flows[f].0,
                    dst: flows[f].1,
                });
            }
        }
        Ok(())
    }

    /// Builds a packet-level simulation with one flow per `(src, dst,
    /// pattern)` triple, with this config's telemetry attached. The mapping
    /// gives each input's simulator flow index (`None` = skipped because
    /// disconnected).
    ///
    /// # Errors
    /// [`EmpowerError::Disconnected`] for the first route-less flow when
    /// [`RunConfig::strict_connectivity`] is on.
    pub fn build_simulation(
        &self,
        net: &Network,
        imap: &InterferenceMap,
        flows: &[(NodeId, NodeId, TrafficPattern)],
        config: SimConfig,
    ) -> Result<(Simulation, Vec<Option<usize>>), EmpowerError> {
        build_simulation_impl(
            net,
            imap,
            flows,
            self.scheme,
            config,
            self.n_shortest,
            &self.telemetry,
            self.strict_connectivity,
        )
    }

    /// Starts a [`RouteMonitor`] for one flow's routes, carrying this
    /// config's `n`-shortest parameter and telemetry (recomputations are
    /// counted by [`crate::RecomputeReason`]).
    pub fn monitor(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        routes: &RouteSet,
    ) -> RouteMonitor {
        RouteMonitor::with_config(
            net,
            self.scheme,
            src,
            dst,
            routes,
            self.n_shortest,
            self.telemetry.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};
    use empower_telemetry::CounterType;

    #[test]
    fn run_config_matches_the_raw_evaluator() {
        // The facade must add configuration, not change results: a default
        // RunConfig reproduces the raw evaluator bit for bit.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows = [(s.gateway, s.client)];
        let new = RunConfig::new(Scheme::Empower).evaluate_fluid(&s.net, &imap, &flows).unwrap();
        let old = crate::eval::evaluate_fluid_impl(
            &s.net,
            &imap,
            &flows,
            Scheme::Empower,
            &FluidEval::default(),
            &Telemetry::disabled(),
        );
        assert_eq!(new.flow_rates, old.flow_rates);
        assert_eq!(new.utility, old.utility);
    }

    #[test]
    fn routes_error_names_the_pair() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            net.set_capacity(empower_model::LinkId(l as u32), 0.0);
        }
        let run = RunConfig::new(Scheme::Empower);
        let err = run.routes(&net, &imap, s.gateway, s.client).unwrap_err();
        assert_eq!(err, EmpowerError::Disconnected { flow: 0, src: s.gateway, dst: s.client });
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn strict_connectivity_turns_zero_rates_into_errors() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            let id = empower_model::LinkId(l as u32);
            if net.link(id).medium.is_wifi() {
                net.set_capacity(id, 0.0);
            }
        }
        let run = RunConfig::new(Scheme::SpWifi).strict_connectivity(true);
        let err = run.evaluate_fluid(&net, &imap, &[(s.gateway, s.client)]).unwrap_err();
        assert!(matches!(err, EmpowerError::Disconnected { flow: 0, .. }));
        // Tolerant mode keeps the old zero-rate behaviour.
        let ok = RunConfig::new(Scheme::SpWifi)
            .evaluate_fluid(&net, &imap, &[(s.gateway, s.client)])
            .unwrap();
        assert_eq!(ok.flow_rates[0], 0.0);
    }

    #[test]
    fn telemetry_records_the_fluid_run() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let tele = Telemetry::enabled();
        let run = RunConfig::new(Scheme::Empower).telemetry(tele.clone());
        run.evaluate_fluid(&s.net, &imap, &[(s.gateway, s.client)]).unwrap();
        let snap = tele.snapshot();
        assert!(snap.value("cc/price_updates").unwrap() > 0);
        assert!(snap.value("eval/flows") == Some(1));
        assert!(snap.value("flow/0/convergence_slots").is_some());
    }

    #[test]
    fn n_shortest_is_respected_end_to_end() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let one = RunConfig::new(Scheme::Empower).n_shortest(1);
        let five = RunConfig::new(Scheme::Empower);
        let r1 = one.routes(&s.net, &imap, s.gateway, s.client).unwrap();
        let r5 = five.routes(&s.net, &imap, s.gateway, s.client).unwrap();
        assert!(r1.len() <= r5.len());
        assert_eq!(one.n(), 1);
        // The monitor built from the config recomputes with the same n.
        let mut m1 = one.monitor(&s.net, s.gateway, s.client, &r1);
        assert_eq!(m1.recompute(&s.net, &imap).len(), r1.len());
    }

    #[test]
    fn gauge_flavor_reaches_the_snapshot() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let tele = Telemetry::enabled();
        let run = RunConfig::new(Scheme::Empower).telemetry(tele.clone());
        run.evaluate_fluid(&s.net, &imap, &[(s.gateway, s.client)]).unwrap();
        let snap = tele.snapshot();
        let (_, flavor, _) = snap
            .counters
            .iter()
            .find(|(n, _, _)| n == "flow/0/routes")
            .expect("per-flow route gauge registered")
            .clone();
        assert_eq!(flavor, CounterType::Gauge);
    }
}
