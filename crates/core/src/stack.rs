//! Wiring schemes into the packet-level simulator (§6-style runs).

use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{FlowSpecSim, SimConfig, Simulation, TrafficPattern};

use crate::scheme::Scheme;

/// Builds a packet-level simulation where each `(src, dst, pattern)` flow
/// runs under `scheme`. Disconnected flows are skipped; the returned vector
/// maps input index → simulator flow index (or `None` if skipped).
pub fn build_simulation(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId, TrafficPattern)],
    scheme: Scheme,
    config: SimConfig,
) -> (Simulation, Vec<Option<usize>>) {
    let mut sim = Simulation::new(net.clone(), imap.clone(), config);
    let mut mapping = Vec::with_capacity(flows.len());
    for &(src, dst, pattern) in flows {
        let routes = scheme.compute_routes(net, imap, src, dst, 5);
        if routes.is_empty() {
            mapping.push(None);
            continue;
        }
        let open_loop_rates: Vec<f64> = if scheme.uses_cc() {
            Vec::new()
        } else {
            // Open loop drives each route at its standalone capacity — the
            // w/o-CC schemes' defining mistake.
            routes.routes.iter().map(|r| r.path.capacity(net, imap)).collect()
        };
        let idx = sim.add_flow(FlowSpecSim {
            src,
            dst,
            routes: routes.paths(),
            use_cc: scheme.uses_cc(),
            open_loop_rates,
            pattern,
            delay_equalization: pattern.is_tcp(),
        });
        mapping.push(Some(idx));
    }
    (sim, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn packet_sim_matches_fluid_eval_on_fig1() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows =
            [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
        let (mut sim, mapping) =
            build_simulation(&s.net, &imap, &flows, Scheme::Empower, SimConfig::default());
        assert_eq!(mapping, vec![Some(0)]);
        let report = sim.run(300.0);
        let t = report.final_throughput(0, 10);
        assert!((t - 50.0 / 3.0).abs() < 1.6, "packet sim {t} vs fluid 16.67");
    }

    #[test]
    fn disconnected_flows_are_skipped() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            let id = empower_model::LinkId(l as u32);
            net.set_capacity(id, 0.0);
        }
        let flows =
            [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 1.0 })];
        let (_, mapping) =
            build_simulation(&net, &imap, &flows, Scheme::Empower, SimConfig::default());
        assert_eq!(mapping, vec![None]);
    }
}
