//! Wiring schemes into the packet-level simulator (§6-style runs).

use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{FlowSpecSim, SimConfig, Simulation, TrafficPattern};
use empower_telemetry::Telemetry;

use crate::run::EmpowerError;
use crate::scheme::Scheme;

/// The engine behind [`crate::RunConfig::build_simulation`]: route
/// computation with a configurable `n`, telemetry attached to the engine
/// before flows register, and an optional strict mode that turns a
/// disconnected flow into [`EmpowerError::Disconnected`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_simulation_impl(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId, TrafficPattern)],
    scheme: Scheme,
    config: SimConfig,
    n_shortest: usize,
    tele: &Telemetry,
    strict: bool,
) -> Result<(Simulation, Vec<Option<usize>>), EmpowerError> {
    let mut sim = Simulation::new(net.clone(), imap.clone(), config);
    sim.attach_telemetry(tele.clone());
    let mut mapping = Vec::with_capacity(flows.len());
    for (f, &(src, dst, pattern)) in flows.iter().enumerate() {
        let routes = scheme.compute_routes(net, imap, src, dst, n_shortest);
        if routes.is_empty() {
            if strict {
                return Err(EmpowerError::Disconnected { flow: f, src, dst });
            }
            mapping.push(None);
            continue;
        }
        let open_loop_rates: Vec<f64> = if scheme.uses_cc() {
            Vec::new()
        } else {
            // Open loop drives each route at its standalone capacity — the
            // w/o-CC schemes' defining mistake.
            routes.routes.iter().map(|r| r.path.capacity(net, imap)).collect()
        };
        let idx = sim.add_flow(FlowSpecSim {
            src,
            dst,
            routes: routes.paths(),
            use_cc: scheme.uses_cc(),
            open_loop_rates,
            pattern,
            delay_equalization: pattern.is_tcp(),
        });
        mapping.push(Some(idx));
    }
    Ok((sim, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn packet_sim_matches_fluid_eval_on_fig1() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let flows =
            [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
        let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
            .build_simulation(&s.net, &imap, &flows, SimConfig::default())
            .unwrap();
        assert_eq!(mapping, vec![Some(0)]);
        let report = sim.run(300.0);
        let t = report.final_throughput(0, 10);
        assert!((t - 50.0 / 3.0).abs() < 1.6, "packet sim {t} vs fluid 16.67");
    }

    #[test]
    fn disconnected_flows_are_skipped() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            let id = empower_model::LinkId(l as u32);
            net.set_capacity(id, 0.0);
        }
        let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 1.0 })];
        let (_, mapping) = RunConfig::new(Scheme::Empower)
            .build_simulation(&net, &imap, &flows, SimConfig::default())
            .unwrap();
        assert_eq!(mapping, vec![None]);
        // Strict mode names the offending flow instead.
        let strict = RunConfig::new(Scheme::Empower).strict_connectivity(true).build_simulation(
            &net,
            &imap,
            &flows,
            SimConfig::default(),
        );
        match strict {
            Err(EmpowerError::Disconnected { flow: 0, .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("strict mode should refuse a disconnected flow"),
        }
    }

    #[test]
    fn telemetry_flows_through_to_the_engine() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let tele = Telemetry::enabled();
        let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 5.0 })];
        let (mut sim, _) = RunConfig::new(Scheme::Empower)
            .telemetry(tele.clone())
            .build_simulation(&s.net, &imap, &flows, SimConfig::default())
            .unwrap();
        sim.run(5.0);
        let snap = tele.snapshot();
        assert!(snap.value("mac/grants").unwrap() > 0, "MAC grants recorded");
        assert!(snap.value("datapath/reorder_delivered").unwrap() > 0);
        assert_eq!(snap.value("datapath/header_decode_errors"), Some(0));
    }
}
