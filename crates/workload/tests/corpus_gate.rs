//! The workload corpus gate: every reference scenario must replay
//! **byte-identically** — across repeated runs of the optimized engine and
//! across the optimized/frozen-reference engine pair — in all four
//! renderings (SLO report, flow report, packet trace, telemetry manifest).
//!
//! `EMPOWER_WORKLOAD_SCENARIOS=N` trims the sweep to the first `N`
//! scenarios (quick CI mode), mirroring `EMPOWER_SIM_EQUIV_SCENARIOS`.

use empower_sim::{ReferenceSimulation, Simulation};
use empower_workload::corpus::{run_workload_scenario, workload_corpus, WorkloadScenario};

fn gated_corpus() -> Vec<WorkloadScenario> {
    let mut c = workload_corpus();
    if let Ok(n) = std::env::var("EMPOWER_WORKLOAD_SCENARIOS") {
        if let Ok(n) = n.parse::<usize>() {
            c.truncate(n.max(1));
        }
    }
    c
}

#[test]
fn workload_scenarios_replay_byte_identically() {
    for s in gated_corpus() {
        let a =
            run_workload_scenario::<Simulation>(&s).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        let b = run_workload_scenario::<Simulation>(&s).unwrap();
        assert_eq!(a.slo, b.slo, "{}: SLO replay", s.name);
        assert_eq!(a.report, b.report, "{}: report replay", s.name);
        assert_eq!(a.trace, b.trace, "{}: trace replay", s.name);
        assert_eq!(a.manifest, b.manifest, "{}: manifest replay", s.name);
    }
}

#[test]
fn workload_scenarios_agree_across_engines() {
    for s in gated_corpus() {
        let opt = run_workload_scenario::<Simulation>(&s).unwrap();
        let reference = run_workload_scenario::<ReferenceSimulation>(&s)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert_eq!(opt.slo, reference.slo, "{}: SLO engines agree", s.name);
        assert_eq!(opt.report, reference.report, "{}: report engines agree", s.name);
        assert_eq!(opt.trace, reference.trace, "{}: trace engines agree", s.name);
        assert_eq!(opt.manifest, reference.manifest, "{}: manifest engines agree", s.name);
    }
}
