//! The workload corpus gate: every reference scenario must replay
//! **byte-identically** — across repeated runs of the optimized engine and
//! across the optimized/frozen-reference engine pair — in all four
//! renderings (SLO report, flow report, packet trace, telemetry manifest).
//!
//! `EMPOWER_WORKLOAD_SCENARIOS=N` trims the sweep to the first `N`
//! scenarios (quick CI mode), mirroring `EMPOWER_SIM_EQUIV_SCENARIOS`.

use empower_sim::{ReferenceSimulation, Simulation};
use empower_workload::corpus::{run_workload_scenario, workload_corpus, WorkloadScenario};

fn gated_corpus() -> Vec<WorkloadScenario> {
    let mut c = workload_corpus();
    if let Ok(n) = std::env::var("EMPOWER_WORKLOAD_SCENARIOS") {
        if let Ok(n) = n.parse::<usize>() {
            c.truncate(n.max(1));
        }
    }
    c
}

#[test]
fn workload_scenarios_replay_byte_identically() {
    for s in gated_corpus() {
        let a =
            run_workload_scenario::<Simulation>(&s).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        let b = run_workload_scenario::<Simulation>(&s).unwrap();
        assert_eq!(a.slo, b.slo, "{}: SLO replay", s.name);
        assert_eq!(a.report, b.report, "{}: report replay", s.name);
        assert_eq!(a.trace, b.trace, "{}: trace replay", s.name);
        assert_eq!(a.manifest, b.manifest, "{}: manifest replay", s.name);
    }
}

#[test]
fn workload_scenarios_agree_across_engines() {
    for s in gated_corpus() {
        let opt = run_workload_scenario::<Simulation>(&s).unwrap();
        let reference = run_workload_scenario::<ReferenceSimulation>(&s)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert_eq!(opt.slo, reference.slo, "{}: SLO engines agree", s.name);
        assert_eq!(opt.report, reference.report, "{}: report engines agree", s.name);
        assert_eq!(opt.trace, reference.trace, "{}: trace engines agree", s.name);
        assert_eq!(opt.manifest, reference.manifest, "{}: manifest engines agree", s.name);
    }
}

/// The campus scenario runs floors in independent interference atoms, so
/// the sharded simulator spreads it across workers — every rendering must
/// still be byte-identical for any shard count (DESIGN.md §13), and the
/// complete renderings (SLO, report, manifest) must match the
/// single-threaded engine exactly. (The trace is compared across shard
/// counts only: the sharded engine emits canonical trace order, and the
/// bounded trace cap may cut the two engines' orderings differently.)
#[test]
fn campus_scenario_is_byte_identical_across_shard_counts() {
    use empower_sim::corpus::ShardedN;

    let corpus = workload_corpus();
    let s = corpus.last().expect("corpus is non-empty");
    assert_eq!(s.name, "campus_scale");
    let single = run_workload_scenario::<Simulation>(s).unwrap();
    let base = run_workload_scenario::<ShardedN<1>>(s).unwrap();
    assert_eq!(single.slo, base.slo, "shards=1 SLO diverged from single-threaded");
    assert_eq!(single.report, base.report, "shards=1 report diverged from single-threaded");
    assert_eq!(single.manifest, base.manifest, "shards=1 manifest diverged from single-threaded");
    let two = run_workload_scenario::<ShardedN<2>>(s).unwrap();
    let four = run_workload_scenario::<ShardedN<4>>(s).unwrap();
    let eight = run_workload_scenario::<ShardedN<8>>(s).unwrap();
    assert_eq!(base, two, "shards=2 diverged from shards=1");
    assert_eq!(base, four, "shards=4 diverged from shards=1");
    assert_eq!(base, eight, "shards=8 diverged from shards=1");
}
