//! Compiling a parsed [`Workload`] into a deterministic flow program.
//!
//! Each client expands into one or more [`FlowSpecSim`]s built on the
//! simulator's existing traffic patterns, so both engines — optimized and
//! frozen reference — run workload scenarios unmodified and the corpus
//! gate can compare them byte for byte:
//!
//! * `open_loop` → `SaturatedUdp` without congestion control on the first
//!   route, at the configured rate;
//! * `closed_loop` → a saturated congestion-controlled multipath flow;
//! * `request_response` → `PoissonFiles`: sequential responses whose
//!   seeded exponential gaps are the client's think times (closed-loop
//!   semantics — the next request waits for the previous response);
//! * `bulk` → `Tcp` with delay equalization, or a UDP `FileDownload`;
//! * `telemetry` → a `PoissonFiles` chain of small readings with mean gap
//!   equal to the reporting period (duty-cycle jitter);
//! * `elephant_mice` → long `Tcp` elephants plus mice `FileDownload`s at
//!   seeded (optionally diurnal) exponential arrival times;
//! * `churn` → sessions arriving by a thinned Poisson process, each a
//!   saturated flow living for a seeded exponential lifetime.
//!
//! Every random draw comes from a per-client, per-instance generator
//! derived from `run.seed` by a SplitMix64-style mix, so adding or
//! reordering clients never perturbs another client's stream and replays
//! are byte-identical.

use empower_dynamics::ScenarioError;
use empower_model::rng::{exponential, Rng, SeedableRng, StdRng};
use empower_model::Network;
use empower_sim::{FlowSpecSim, TrafficPattern};

use crate::routes::{endpoints, routes_for};
use crate::spec::{ClientKind, Diurnal, Workload};

/// One simulator flow with its workload provenance.
#[derive(Debug, Clone)]
pub struct CompiledFlow {
    /// Index of the originating `[[clients]]` entry.
    pub client: usize,
    /// The flow handed to the engine (flow index = position in
    /// [`CompiledWorkload::flows`]).
    pub spec: FlowSpecSim,
}

/// A workload lowered to concrete simulator flows.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// Resolved SLO label per client group.
    pub labels: Vec<String>,
    /// All flows, in deterministic registration order.
    pub flows: Vec<CompiledFlow>,
}

/// Derives the seed of one client instance's traffic generator.
///
/// SplitMix64-style finalizer over (run seed, client index, instance
/// index): distinct inputs land in uncorrelated streams, and a client's
/// stream depends only on its own position — editing one `[[clients]]`
/// entry never reshuffles another's randomness.
pub fn instance_seed(run_seed: u64, client: u64, instance: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add(client.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(instance.wrapping_add(1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The diurnal rate multiplier at time `t` (1 without modulation).
fn diurnal_factor(d: Option<Diurnal>, start: f64, t: f64) -> f64 {
    match d {
        None => 1.0,
        Some(d) => 1.0 + d.amplitude * (std::f64::consts::TAU * (t - start) / d.period_secs).sin(),
    }
}

/// Seeded arrival times in `[start, horizon)` for a Poisson process of
/// `base_rate` events/sec, optionally diurnally modulated (by thinning
/// against the peak rate), truncated at `max` events.
fn poisson_arrivals(
    rng: &mut StdRng,
    start: f64,
    horizon: f64,
    base_rate: f64,
    diurnal: Option<Diurnal>,
    max: usize,
) -> Vec<f64> {
    let peak = base_rate * (1.0 + diurnal.map_or(0.0, |d| d.amplitude));
    let mut out = Vec::new();
    let mut t = start;
    while out.len() < max {
        t += exponential(rng, 1.0 / peak);
        if t >= horizon {
            break;
        }
        // Thinning: a candidate at t survives with probability rate(t)/peak.
        let accept = rng.gen::<f64>() * peak < base_rate * diurnal_factor(diurnal, start, t);
        if accept {
            out.push(t);
        }
    }
    out
}

/// Expands every client of `w` into simulator flows against `net`.
///
/// Flows whose start time falls at or beyond the horizon are dropped —
/// they could never carry traffic — so the flow list is exactly the set
/// the engine will run.
pub fn compile(w: &Workload, net: &Network) -> Result<CompiledWorkload, ScenarioError> {
    let horizon = w.run.horizon_secs;
    let mut flows = Vec::new();
    for (ci, c) in w.clients.iter().enumerate() {
        let path = format!("clients[{ci}]");
        let routes = routes_for(net, &w.topology, c.src, c.dst, c.via, &path)?;
        let (src, dst) = endpoints(&w.topology, c.src, c.dst);
        let base = FlowSpecSim::saturated(src, dst, routes, horizon);
        let mut push = |spec: FlowSpecSim| {
            if spec.pattern.start_time() < horizon {
                flows.push(CompiledFlow { client: ci, spec });
            }
        };
        match c.kind {
            ClientKind::OpenLoop { rate_mbps, stop } => {
                for _ in 0..c.count {
                    push(FlowSpecSim {
                        routes: vec![base.routes[0].clone()],
                        use_cc: false,
                        open_loop_rates: vec![rate_mbps],
                        pattern: TrafficPattern::SaturatedUdp {
                            start: c.start,
                            stop: stop.unwrap_or(horizon).min(horizon),
                        },
                        ..base.clone()
                    });
                }
            }
            ClientKind::ClosedLoop { stop } => {
                for _ in 0..c.count {
                    push(FlowSpecSim {
                        pattern: TrafficPattern::SaturatedUdp {
                            start: c.start,
                            stop: stop.unwrap_or(horizon).min(horizon),
                        },
                        ..base.clone()
                    });
                }
            }
            ClientKind::RequestResponse { requests, response_bytes, think_secs } => {
                for _ in 0..c.count {
                    push(FlowSpecSim {
                        pattern: TrafficPattern::PoissonFiles {
                            start: c.start,
                            count: requests,
                            size_bytes: response_bytes,
                            mean_gap_secs: think_secs,
                        },
                        ..base.clone()
                    });
                }
            }
            ClientKind::Bulk { size_bytes, tcp } => {
                for _ in 0..c.count {
                    push(if tcp {
                        FlowSpecSim {
                            pattern: TrafficPattern::Tcp {
                                start: c.start,
                                stop: horizon,
                                size_bytes,
                            },
                            delay_equalization: true,
                            ..base.clone()
                        }
                    } else {
                        FlowSpecSim {
                            pattern: TrafficPattern::FileDownload { start: c.start, size_bytes },
                            ..base.clone()
                        }
                    });
                }
            }
            ClientKind::Telemetry { period_secs, payload_bytes } => {
                // Enough readings to span the horizon; the run ends before
                // any excess ticks fire.
                let span = (horizon - c.start).max(0.0);
                let ticks = (span / period_secs).ceil().max(1.0) as u32;
                for _ in 0..c.count {
                    push(FlowSpecSim {
                        pattern: TrafficPattern::PoissonFiles {
                            start: c.start,
                            count: ticks,
                            size_bytes: payload_bytes,
                            mean_gap_secs: period_secs,
                        },
                        ..base.clone()
                    });
                }
            }
            ClientKind::ElephantMice {
                elephants,
                elephant_bytes,
                mice,
                mouse_bytes,
                mean_gap_secs,
            } => {
                for _ in 0..elephants {
                    push(FlowSpecSim {
                        pattern: TrafficPattern::Tcp {
                            start: c.start,
                            stop: horizon,
                            size_bytes: elephant_bytes,
                        },
                        delay_equalization: true,
                        ..base.clone()
                    });
                }
                let mut rng = StdRng::seed_from_u64(instance_seed(w.run.seed, ci as u64, 0));
                let arrivals = poisson_arrivals(
                    &mut rng,
                    c.start,
                    horizon,
                    1.0 / mean_gap_secs,
                    c.diurnal,
                    mice as usize,
                );
                for at in arrivals {
                    push(FlowSpecSim {
                        pattern: TrafficPattern::FileDownload {
                            start: at,
                            size_bytes: mouse_bytes,
                        },
                        ..base.clone()
                    });
                }
            }
            ClientKind::Churn { base_rate_per_sec, mean_session_secs, max_sessions } => {
                let mut rng = StdRng::seed_from_u64(instance_seed(w.run.seed, ci as u64, 0));
                let arrivals = poisson_arrivals(
                    &mut rng,
                    c.start,
                    horizon,
                    base_rate_per_sec,
                    c.diurnal,
                    max_sessions as usize,
                );
                for at in arrivals {
                    let life = exponential(&mut rng, mean_session_secs);
                    push(FlowSpecSim {
                        pattern: TrafficPattern::SaturatedUdp {
                            start: at,
                            stop: (at + life).min(horizon),
                        },
                        ..base.clone()
                    });
                }
            }
        }
    }
    let labels = (0..w.clients.len()).map(|i| w.client_label(i)).collect();
    Ok(CompiledWorkload { labels, flows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::build_topology;
    use crate::spec::Workload;

    fn sample(extra: &str) -> Workload {
        let text = format!(
            r#"
schema = 1
name = "t"

[topology]
kind = "fig1"

[run]
seed = 11
horizon_secs = 20.0

{extra}
"#
        );
        Workload::parse_str(&text).unwrap()
    }

    #[test]
    fn count_replicates_and_labels_resolve() {
        let w = sample(
            "[[clients]]\nkind = \"closed_loop\"\nsrc = 0\ndst = 2\ncount = 3\n\n\
             [[clients]]\nlabel = \"tick\"\nkind = \"telemetry\"\nsrc = 1\ndst = 2\n\
             period_secs = 2.0\npayload_bytes = 1000\n",
        );
        let (net, _) = build_topology(&w.topology);
        let c = compile(&w, &net).unwrap();
        assert_eq!(c.labels, vec!["client0".to_string(), "tick".to_string()]);
        assert_eq!(c.flows.len(), 4);
        assert!(c.flows[..3].iter().all(|f| f.client == 0));
        // 20s span at 2s period → 10 readings.
        assert!(matches!(c.flows[3].spec.pattern, TrafficPattern::PoissonFiles { count: 10, .. }));
    }

    #[test]
    fn churn_sessions_are_seeded_and_bounded() {
        let w = sample(
            "[[clients]]\nkind = \"churn\"\nsrc = 0\ndst = 2\nbase_rate_per_sec = 0.5\n\
             mean_session_secs = 3.0\nmax_sessions = 4\n",
        );
        let (net, _) = build_topology(&w.topology);
        let a = compile(&w, &net).unwrap();
        let b = compile(&w, &net).unwrap();
        assert!(a.flows.len() <= 4);
        assert!(!a.flows.is_empty(), "0.5/s over 20s should admit sessions");
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(format!("{:?}", x.spec.pattern), format!("{:?}", y.spec.pattern));
        }
        for f in &a.flows {
            if let TrafficPattern::SaturatedUdp { start, stop } = f.spec.pattern {
                assert!(start < stop && stop <= 20.0);
            }
        }
    }

    #[test]
    fn instance_seeds_are_position_stable() {
        assert_ne!(instance_seed(1, 0, 0), instance_seed(1, 0, 1));
        assert_ne!(instance_seed(1, 0, 0), instance_seed(1, 1, 0));
        assert_ne!(instance_seed(1, 0, 0), instance_seed(2, 0, 0));
        assert_eq!(instance_seed(9, 3, 5), instance_seed(9, 3, 5));
    }

    #[test]
    fn diurnal_thinning_respects_peak_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Some(Diurnal { period_secs: 10.0, amplitude: 1.0 });
        let arrivals = poisson_arrivals(&mut rng, 0.0, 100.0, 1.0, d, 10_000);
        // Mean rate is `base` after thinning; allow generous slack.
        assert!(arrivals.len() > 50 && arrivals.len() < 200, "got {}", arrivals.len());
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]), "arrivals are ordered");
    }
}
