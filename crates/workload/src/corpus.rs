//! The seeded workload scenario corpus.
//!
//! Four reference workloads — an enterprise request/response mix, an IoT
//! telemetry floor, a diurnal elephant/mice mix with churn, and a
//! campus-scale mix on a generated hierarchical topology — pinned the
//! same way the sim equivalence corpus pins the raw engines: the gate test
//! (`crates/workload/tests/corpus_gate.rs`) replays each scenario twice,
//! across both engines, and (for the campus entry) across sharded-engine
//! shard counts, comparing every rendering byte for byte.
//! The documents are the runnable examples under `examples/` verbatim
//! (`include_str!`), so the corpus and the documentation cannot drift.

use empower_dynamics::ScenarioError;
use empower_sim::corpus::SimEngine;
use empower_telemetry::Telemetry;

use crate::driver::{run_workload_on, run_workload_with, WorkloadOutput};
use crate::spec::Workload;

/// One corpus entry: a named workload document.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadScenario {
    /// Stable name (matches the document's `name` field).
    pub name: &'static str,
    /// The TOML source.
    pub toml: &'static str,
}

/// The four byte-compared renderings of one workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadCorpusOutput {
    /// `format!("{slo:?}")` — every SLO metric of every client group.
    pub slo: String,
    /// `format!("{report:?}")` — every stat of every flow.
    pub report: String,
    /// The packet trace as JSON lines.
    pub trace: String,
    /// The telemetry manifest rendering (SLO gauges included).
    pub manifest: String,
}

/// The fixed workload corpus. Order is stable — tests index into it.
pub fn workload_corpus() -> Vec<WorkloadScenario> {
    vec![
        WorkloadScenario {
            name: "enterprise_rr",
            toml: include_str!("../../../examples/workload_enterprise_rr.toml"),
        },
        WorkloadScenario {
            name: "iot_floor",
            toml: include_str!("../../../examples/workload_iot_floor.toml"),
        },
        WorkloadScenario {
            name: "elephant_mice",
            toml: include_str!("../../../examples/workload_elephant_mice.toml"),
        },
        WorkloadScenario {
            name: "campus_scale",
            toml: include_str!("../../../examples/workload_campus.toml"),
        },
    ]
}

/// Parses and runs one corpus scenario through engine `E`, returning the
/// byte-comparable renderings.
pub fn run_workload_scenario<E: SimEngine>(
    s: &WorkloadScenario,
) -> Result<WorkloadCorpusOutput, ScenarioError> {
    let w = Workload::parse_str(s.toml)?;
    Ok(render(run_workload_on::<E>(&w)?))
}

/// [`run_workload_scenario`] with a caller-supplied telemetry registry
/// (see [`run_workload_with`]), returning the structured output alongside
/// the renderings.
pub fn run_workload_scenario_with<E: SimEngine>(
    s: &WorkloadScenario,
    tele: Telemetry,
) -> Result<(WorkloadOutput, WorkloadCorpusOutput), ScenarioError> {
    let w = Workload::parse_str(s.toml)?;
    let out = run_workload_with::<E>(&w, tele)?;
    let rendered = render(out.clone());
    Ok((out, rendered))
}

fn render(out: WorkloadOutput) -> WorkloadCorpusOutput {
    WorkloadCorpusOutput {
        slo: format!("{:?}", out.slo),
        report: format!("{:?}", out.report),
        trace: out.trace,
        manifest: out.manifest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_documents_parse_and_match_names() {
        for s in workload_corpus() {
            let w = Workload::parse_str(s.toml).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(w.name, s.name, "document name matches corpus entry");
            assert!(!w.clients.is_empty());
        }
    }

    #[test]
    fn one_scenario_runs_and_renders() {
        let s = workload_corpus()[0];
        let out = run_workload_scenario::<empower_sim::Simulation>(&s).unwrap();
        assert!(out.slo.contains("fct_ms"));
        assert!(out.report.contains("delivered_bits"));
        assert!(out.manifest.contains("workload"));
    }
}
