//! Driving a compiled workload through a simulation engine.

use empower_dynamics::ScenarioError;
use empower_sim::corpus::SimEngine;
use empower_sim::{SimConfig, SimReport, Simulation, Trace};
use empower_telemetry::{Manifest, Telemetry};

use crate::compile::{compile, CompiledWorkload};
use crate::routes::build_topology;
use crate::slo::WorkloadSlo;
use crate::spec::Workload;

/// Everything a workload run produces.
#[derive(Debug, Clone)]
pub struct WorkloadOutput {
    /// The compiled flow program the run executed.
    pub compiled: CompiledWorkload,
    /// Per-group SLO metrics.
    pub slo: WorkloadSlo,
    /// The engine's raw per-flow report.
    pub report: SimReport,
    /// The packet trace as JSON lines (bounded).
    pub trace: String,
    /// The run manifest: configuration plus every counter, SLO gauges
    /// included.
    pub manifest: String,
}

/// Runs `w` through engine `E` with a fresh live telemetry registry and a
/// bounded trace attached.
///
/// All flows — churn arrivals included — are compiled and registered
/// before the control plane starts, so the engine sees one deterministic
/// event program; replaying the same document yields byte-identical
/// report, trace and manifest renderings.
pub fn run_workload_on<E: SimEngine>(w: &Workload) -> Result<WorkloadOutput, ScenarioError> {
    run_workload_with::<E>(w, Telemetry::enabled())
}

/// [`run_workload_on`] with a caller-supplied telemetry registry — the
/// hook the deterministic parallel sweep uses to give every work item its
/// own registry and merge snapshots in index order.
pub fn run_workload_with<E: SimEngine>(
    w: &Workload,
    tele: Telemetry,
) -> Result<WorkloadOutput, ScenarioError> {
    w.validate()?;
    let (net, imap) = build_topology(&w.topology);
    let compiled = compile(w, &net)?;
    if compiled.flows.is_empty() {
        return Err(ScenarioError {
            path: "clients".into(),
            message: "workload compiled to zero runnable flows".into(),
        });
    }
    let cfg =
        SimConfig { seed: w.run.seed, estimation_rel_std: w.run.noise, ..SimConfig::default() };
    let mut sim = E::build(net, imap, cfg);
    sim.attach_telemetry(tele);
    sim.attach_trace(Trace::bounded(50_000));
    for f in &compiled.flows {
        sim.add_flow(f.spec.clone());
    }
    sim.run_until(w.run.horizon_secs);
    let report = sim.report(w.run.horizon_secs);
    let slo = WorkloadSlo::compute(&w.name, &compiled, &report);
    slo.emit(sim.telemetry());
    let mut m = Manifest::new("workload");
    m.set("workload", w.name.as_str())
        .set("seed", w.run.seed)
        .set("horizon_secs", w.run.horizon_secs)
        .set("flows", compiled.flows.len() as u64);
    m.attach_counters(sim.telemetry());
    let trace = sim.take_trace().map(|t| t.to_jsonl()).unwrap_or_default();
    Ok(WorkloadOutput { compiled, slo, report, trace, manifest: m.render() })
}

/// Runs `w` on the optimized engine (the common entry point).
pub fn run_workload(w: &Workload) -> Result<WorkloadOutput, ScenarioError> {
    run_workload_on::<Simulation>(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
schema = 1
name = "tiny"

[topology]
kind = "fig1"

[run]
seed = 3
horizon_secs = 6.0

[[clients]]
label = "rr"
kind = "request_response"
src = 0
dst = 2
requests = 3
response_bytes = 120000
think_secs = 0.3
"#;

    #[test]
    fn runs_and_reports_slo() {
        let w = Workload::parse_str(TINY).unwrap();
        let out = run_workload(&w).unwrap();
        assert_eq!(out.slo.clients.len(), 1);
        let c = &out.slo.clients[0];
        assert_eq!(c.label, "rr");
        assert_eq!(c.flows, 1);
        assert!(c.fct_ms.count > 0, "responses completed");
        assert!(out.manifest.contains("workload/rr/fct_ms/p50"));
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn replay_is_byte_identical() {
        let w = Workload::parse_str(TINY).unwrap();
        let a = run_workload(&w).unwrap();
        let b = run_workload(&w).unwrap();
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.manifest, b.manifest);
        assert_eq!(a.slo, b.slo);
    }
}
