#![forbid(unsafe_code)]
//! # empower-workload
//!
//! A composable, netbench-style workload DSL for the EMPoWER reproduction:
//! versioned TOML/JSON documents ([`spec`]) describing clients — open- and
//! closed-loop sources, request/response exchanges, bulk transfers, IoT
//! telemetry, elephant/mice mixes, diurnal load curves and session churn —
//! that compile ([`compile`]) into deterministic seeded flow programs for
//! the packet simulator and run ([`driver`]) on either engine through the
//! [`empower_sim::corpus::SimEngine`] surface.
//!
//! Determinism is the contract (DESIGN.md §11): every stochastic choice
//! draws from a per-client generator derived from `run.seed`, so a
//! workload file replays **byte-identically** — report, packet trace,
//! telemetry manifest and the SLO metrics ([`slo`]: p50/p95/p99 flow
//! completion times, goodput, Jain fairness) distilled from it. A seeded
//! scenario corpus ([`corpus`]) pins three reference workloads across both
//! engines, the same way the sim equivalence corpus pins the raw engines.
//!
//! ```
//! use empower_workload::{run_workload, Workload};
//!
//! let text = r#"
//! schema = 1
//! name = "demo"
//!
//! [topology]
//! kind = "fig1"
//!
//! [run]
//! seed = 1
//! horizon_secs = 5.0
//!
//! [[clients]]
//! kind = "closed_loop"
//! src = 0
//! dst = 2
//! "#;
//! let w = Workload::parse_str(text).unwrap();
//! let out = run_workload(&w).unwrap();
//! assert_eq!(out.slo.clients.len(), 1);
//! ```

pub mod compile;
pub mod corpus;
pub mod driver;
pub mod routes;
pub mod slo;
pub mod spec;

pub use compile::{compile, instance_seed, CompiledFlow, CompiledWorkload};
pub use corpus::{
    run_workload_scenario, run_workload_scenario_with, workload_corpus, WorkloadCorpusOutput,
    WorkloadScenario,
};
pub use driver::{run_workload, run_workload_on, run_workload_with, WorkloadOutput};
pub use slo::{jain_milli, ClientSlo, WorkloadSlo};
pub use spec::{
    ClientKind, ClientSpec, Diurnal, TopologySpec, Workload, WorkloadRun, WorkloadTopology,
    WORKLOAD_SCHEMA_VERSION,
};
