//! Topology construction and route building for workload clients.
//!
//! The workload DSL names endpoints abstractly (Fig. 1 node indices or
//! testbed paper numbers); this module turns a pair into the concrete
//! multipath route set the EMPoWER stack would install — the same sets the
//! sim equivalence corpus uses, so workload runs exercise exactly the
//! routes the rest of the reproduction is validated on.

use empower_dynamics::schema::serr;
use empower_dynamics::ScenarioError;
use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::campus::{campus, CampusConfig};
use empower_model::topology::{fig1_scenario, testbed22};
use empower_model::{
    CarrierSense, InterferenceMap, InterferenceModel, Medium, Network, NodeId, Path, SharedMedium,
};

use crate::spec::{TopologySpec, WorkloadTopology};

/// Builds the workload's network and interference map.
pub fn build_topology(t: &TopologySpec) -> (Network, InterferenceMap) {
    match t.kind {
        WorkloadTopology::Fig1 => {
            let f = fig1_scenario();
            let imap = SharedMedium.build_map(&f.net);
            (f.net, imap)
        }
        WorkloadTopology::Testbed => {
            let t = testbed22(t.seed);
            let imap = CarrierSense::default().build_map(&t.net);
            (t.net, imap)
        }
        WorkloadTopology::Campus { buildings, floors_per_building, clients_per_floor } => {
            let mut rng = StdRng::seed_from_u64(t.seed);
            let c = campus(
                &mut rng,
                &CampusConfig::new(buildings, floors_per_building, clients_per_floor),
            );
            let imap = CarrierSense::default().build_map(&c.net);
            (c.net, imap)
        }
    }
}

/// The simulator endpoints of a workload pair.
pub fn endpoints(topo: &TopologySpec, src: u32, dst: u32) -> (NodeId, NodeId) {
    match topo.kind {
        WorkloadTopology::Fig1 | WorkloadTopology::Campus { .. } => (NodeId(src), NodeId(dst)),
        WorkloadTopology::Testbed => {
            let t = testbed22(topo.seed);
            (t.node(src), t.node(dst))
        }
    }
}

/// The multipath route set for a workload pair, in scheduler order.
///
/// Fig. 1 supports the paper's downstream pairs: gateway→client uses both
/// hybrid routes, gateway→extender its two single hops, extender→client
/// the WiFi hop. Testbed pairs use the direct PLC link (which the sampled
/// layout must contain) plus a 2-hop WiFi relay through `via` when both
/// hops exist. Campus pairs must be directly attached (a floor router and
/// one of its clients); every direct link becomes a single-hop route, so
/// hybrid clients get WiFi+PLC multipath automatically.
pub fn routes_for(
    net: &Network,
    topo: &TopologySpec,
    src: u32,
    dst: u32,
    via: Option<u32>,
    path: &str,
) -> Result<Vec<Path>, ScenarioError> {
    match topo.kind {
        WorkloadTopology::Fig1 => {
            let f = fig1_scenario();
            let links: Vec<Vec<_>> = match (src, dst) {
                (0, 2) => vec![vec![f.plc_ab, f.wifi_bc], vec![f.wifi_ab, f.wifi_bc]],
                (0, 1) => vec![vec![f.plc_ab], vec![f.wifi_ab]],
                (1, 2) => vec![vec![f.wifi_bc]],
                _ => return serr(path, format!("unsupported fig1 pair {src}→{dst}")),
            };
            links
                .into_iter()
                .map(|l| {
                    Path::new(net, l).map_err(|e| ScenarioError {
                        path: path.to_string(),
                        message: format!("invalid fig1 route: {e:?}"),
                    })
                })
                .collect()
        }
        WorkloadTopology::Testbed => {
            let t = testbed22(topo.seed);
            let (s, d) = (t.node(src), t.node(dst));
            let plc = match net.find_link(s, d, Medium::Plc) {
                Some(l) => l.id,
                None => {
                    return serr(
                        path,
                        format!(
                            "testbed seed {} has no direct PLC link {src}→{dst}; \
                             pick an adjacent pair",
                            topo.seed
                        ),
                    )
                }
            };
            let mut routes = vec![mk_path(net, vec![plc], path)?];
            if let Some(via) = via {
                let v = t.node(via);
                let hop1 = net.find_link(s, v, Medium::WIFI1).map(|l| l.id);
                let hop2 = net.find_link(v, d, Medium::WIFI1).map(|l| l.id);
                match (hop1, hop2) {
                    (Some(a), Some(b)) => routes.push(mk_path(net, vec![a, b], path)?),
                    _ => {
                        return serr(
                            path,
                            format!("testbed relay {src}→{via}→{dst} is missing a WiFi hop"),
                        )
                    }
                }
            }
            Ok(routes)
        }
        WorkloadTopology::Campus { .. } => {
            let links: Vec<_> =
                net.out_links(NodeId(src)).filter(|l| l.to == NodeId(dst)).map(|l| l.id).collect();
            if links.is_empty() {
                return serr(
                    path,
                    format!(
                        "campus pair {src}→{dst} shares no direct link; \
                         pairs must be a floor router and one of its clients"
                    ),
                );
            }
            links.into_iter().map(|l| mk_path(net, vec![l], path)).collect()
        }
    }
}

fn mk_path(
    net: &Network,
    links: Vec<empower_model::LinkId>,
    path: &str,
) -> Result<Path, ScenarioError> {
    Path::new(net, links).map_err(|e| ScenarioError {
        path: path.to_string(),
        message: format!("invalid route: {e:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    #[test]
    fn fig1_pairs_build_expected_route_counts() {
        let t = TopologySpec { kind: WorkloadTopology::Fig1, seed: 1 };
        let (net, _) = build_topology(&t);
        assert_eq!(routes_for(&net, &t, 0, 2, None, "c").unwrap().len(), 2);
        assert_eq!(routes_for(&net, &t, 0, 1, None, "c").unwrap().len(), 2);
        assert_eq!(routes_for(&net, &t, 1, 2, None, "c").unwrap().len(), 1);
        assert!(routes_for(&net, &t, 2, 0, None, "c").is_err());
    }

    #[test]
    fn testbed_pair_builds_plc_plus_relay() {
        let t = TopologySpec { kind: WorkloadTopology::Testbed, seed: 1 };
        let (net, _) = build_topology(&t);
        // The corpus-pinned pair 1→13 via 4 exists at seed 1.
        let routes = routes_for(&net, &t, 1, 13, Some(4), "c").unwrap();
        assert!(!routes.is_empty());
        let direct = routes_for(&net, &t, 1, 13, None, "c").unwrap();
        assert_eq!(direct.len(), 1);
    }
}
