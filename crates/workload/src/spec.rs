//! The workload DSL: versioned TOML/JSON documents describing composable
//! traffic programs.
//!
//! A workload file names a topology, a deterministic run configuration and
//! a list of **clients** — composable traffic primitives (open-/closed-loop
//! sources, request/response exchanges, bulk transfers, IoT telemetry
//! ticks, elephant/mice mixes, session churn) that the compiler
//! ([`crate::compile`]) expands into concrete simulator flows. Every
//! stochastic choice (Poisson gaps, churn arrivals, session lifetimes)
//! draws from a generator derived from `run.seed`, so the same file replays
//! byte-identically; see DESIGN.md §11 for the grammar and the determinism
//! contract.

use empower_dynamics::schema::{
    arr_of, check_schema_version, join, opt_f64, opt_str, opt_u64, req_f64, req_str, req_u64, serr,
};
use empower_dynamics::{toml, ScenarioError};
use empower_telemetry::Json;

/// The workload schema major version this build reads and writes.
pub const WORKLOAD_SCHEMA_VERSION: u64 = 1;

/// Which prebuilt topology the workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadTopology {
    /// The paper's Fig. 1 three-node chain (0 = gateway, 1 = extender,
    /// 2 = client).
    Fig1,
    /// The sampled 22-node office testbed (§6); nodes are the paper's
    /// numbers `1..=22`, the layout depends on `topology.seed`.
    Testbed,
    /// A generated hierarchical campus (`empower_model::topology::campus`)
    /// with the given grid; the layout depends on `topology.seed`. Nodes
    /// are raw generation-order indices, which are pure arithmetic in the
    /// grid: the core is 0; building `b` starts at
    /// `1 + b·(F·(1+K)+1)` with its aggregation router; floor `f` of that
    /// building has its router at `agg + 1 + f·(1+K)` followed by its `K`
    /// clients in order.
    Campus { buildings: u32, floors_per_building: u32, clients_per_floor: u32 },
}

impl WorkloadTopology {
    /// The on-disk label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadTopology::Fig1 => "fig1",
            WorkloadTopology::Testbed => "testbed",
            WorkloadTopology::Campus { .. } => "campus",
        }
    }

    /// Total campus node count (`None` for the fixed topologies).
    pub fn campus_node_count(self) -> Option<u64> {
        match self {
            WorkloadTopology::Campus { buildings, floors_per_building, clients_per_floor } => {
                let per_building =
                    u64::from(floors_per_building) * (1 + u64::from(clients_per_floor));
                Some(u64::from(buildings) * (per_building + 1) + 1)
            }
            _ => None,
        }
    }

    fn from_table(topo: &Json, path: &str) -> Result<Self, ScenarioError> {
        match req_str(topo, "kind", path)? {
            "fig1" => Ok(WorkloadTopology::Fig1),
            "testbed" => Ok(WorkloadTopology::Testbed),
            "campus" => Ok(WorkloadTopology::Campus {
                buildings: opt_dim(topo, "buildings", path, 2)?,
                floors_per_building: opt_dim(topo, "floors_per_building", path, 2)?,
                clients_per_floor: opt_dim(topo, "clients_per_floor", path, 4)?,
            }),
            other => serr(
                join(path, "kind"),
                format!("unknown topology kind {other:?} (fig1|testbed|campus)"),
            ),
        }
    }
}

/// Reads an optional positive campus grid dimension.
fn opt_dim(v: &Json, key: &str, path: &str, default: u32) -> Result<u32, ScenarioError> {
    let n = match opt_u64(v, key, path)? {
        None => default,
        Some(n) => narrow_u32(n, &join(path, key))?,
    };
    if n == 0 {
        return serr(join(path, key), "must be at least 1");
    }
    Ok(n)
}

/// The `[topology]` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    pub kind: WorkloadTopology,
    /// Sampling seed for the testbed layout (ignored by Fig. 1).
    pub seed: u64,
}

/// The `[run]` table: the deterministic run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadRun {
    /// Master seed: the engine RNG *and* every client's traffic generator
    /// derive from it, so one number pins the whole run.
    pub seed: u64,
    /// Simulated horizon, seconds.
    pub horizon_secs: f64,
    /// Capacity-estimation noise (`SimConfig::estimation_rel_std`).
    pub noise: f64,
}

/// Optional diurnal modulation of an arrival process: the instantaneous
/// rate is `base * (1 + amplitude * sin(2π (t - start) / period_secs))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    pub period_secs: f64,
    /// In `[0, 1]`; 0 disables the modulation.
    pub amplitude: f64,
}

/// The traffic primitive a client runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientKind {
    /// Fixed-rate open-loop injection (no congestion control) on the
    /// first route.
    OpenLoop { rate_mbps: f64, stop: Option<f64> },
    /// A saturated congestion-controlled source (the paper's iperf runs).
    ClosedLoop { stop: Option<f64> },
    /// A closed-loop request/response exchange: `requests` sequential
    /// responses of `response_bytes`, the next request issued a seeded
    /// `Exp(think_secs)` after the previous response finished.
    RequestResponse { requests: u32, response_bytes: u64, think_secs: f64 },
    /// A bulk transfer: TCP (delay-equalized) when `tcp`, otherwise a UDP
    /// file download. `size_bytes = 0` (TCP only) runs to the horizon.
    Bulk { size_bytes: u64, tcp: bool },
    /// IoT telemetry: periodic `payload_bytes` readings every
    /// `period_secs` on average (duty-cycle jitter is exponential), from
    /// `start` to the horizon.
    Telemetry { period_secs: f64, payload_bytes: u64 },
    /// A heavy-tailed mix: `elephants` long TCP transfers plus `mice`
    /// short downloads arriving with seeded `Exp(mean_gap_secs)` gaps
    /// (optionally diurnally modulated).
    ElephantMice {
        elephants: u32,
        elephant_bytes: u64,
        mice: u32,
        mouse_bytes: u64,
        mean_gap_secs: f64,
    },
    /// Session churn: clients arrive as a (optionally diurnal) Poisson
    /// process of `base_rate_per_sec`, each running a saturated flow for
    /// an `Exp(mean_session_secs)` lifetime, capped at `max_sessions`.
    Churn { base_rate_per_sec: f64, mean_session_secs: f64, max_sessions: u32 },
}

impl ClientKind {
    /// The on-disk `kind` label.
    pub fn label(&self) -> &'static str {
        match self {
            ClientKind::OpenLoop { .. } => "open_loop",
            ClientKind::ClosedLoop { .. } => "closed_loop",
            ClientKind::RequestResponse { .. } => "request_response",
            ClientKind::Bulk { .. } => "bulk",
            ClientKind::Telemetry { .. } => "telemetry",
            ClientKind::ElephantMice { .. } => "elephant_mice",
            ClientKind::Churn { .. } => "churn",
        }
    }

    /// Whether the `count` replication knob applies to this kind (the
    /// population kinds size themselves).
    pub fn replicable(&self) -> bool {
        !matches!(self, ClientKind::ElephantMice { .. } | ClientKind::Churn { .. })
    }

    /// Whether `[clients.diurnal]` modulation is meaningful for this kind.
    pub fn supports_diurnal(&self) -> bool {
        matches!(self, ClientKind::ElephantMice { .. } | ClientKind::Churn { .. })
    }
}

/// One `[[clients]]` entry: a traffic primitive bound to an endpoint pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSpec {
    /// Stable label for SLO reporting (defaults to `client<index>`).
    pub label: Option<String>,
    /// Source node (Fig. 1 index or testbed paper number).
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Optional WiFi relay node for testbed routes.
    pub via: Option<u32>,
    /// Parallel instances of this client (replicable kinds only).
    pub count: u32,
    /// When the client starts, seconds.
    pub start: f64,
    pub kind: ClientKind,
    pub diurnal: Option<Diurnal>,
}

/// A parsed workload document.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    pub name: String,
    pub topology: TopologySpec,
    pub run: WorkloadRun,
    pub clients: Vec<ClientSpec>,
}

impl Workload {
    /// Parses a workload from TOML or JSON (auto-detected: JSON documents
    /// start with `{`).
    pub fn parse_str(text: &str) -> Result<Workload, ScenarioError> {
        let doc = if text.trim_start().starts_with('{') {
            Json::parse(text).map_err(|e| ScenarioError {
                path: String::new(),
                message: format!("JSON: {e:?}"),
            })?
        } else {
            toml::parse(text)
                .map_err(|e| ScenarioError { path: String::new(), message: e.to_string() })?
        };
        Workload::from_json(&doc)
    }

    /// Builds a workload from a JSON tree.
    pub fn from_json(doc: &Json) -> Result<Workload, ScenarioError> {
        check_schema_version(doc, WORKLOAD_SCHEMA_VERSION)?;
        let name = req_str(doc, "name", "")?.to_string();

        let topo = doc.get("topology").ok_or_else(|| ScenarioError {
            path: "topology".into(),
            message: "missing [topology] table".into(),
        })?;
        let kind = WorkloadTopology::from_table(topo, "topology")?;
        let topology = TopologySpec { kind, seed: opt_u64(topo, "seed", "topology")?.unwrap_or(1) };

        let run = doc.get("run").ok_or_else(|| ScenarioError {
            path: "run".into(),
            message: "missing [run] table".into(),
        })?;
        let run = WorkloadRun {
            seed: req_u64(run, "seed", "run")?,
            horizon_secs: req_f64(run, "horizon_secs", "run")?,
            noise: opt_f64(run, "noise", "run")?.unwrap_or(0.0),
        };

        let clients = arr_of(doc, "clients", client_from_json)?;
        let w = Workload { name, topology, run, clients };
        w.validate()?;
        Ok(w)
    }

    /// Serializes to the JSON tree ([`Workload::from_json`]'s inverse).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::UInt(WORKLOAD_SCHEMA_VERSION)),
            ("name".into(), Json::Str(self.name.clone())),
            ("topology".into(), {
                let mut o = vec![
                    ("kind".to_string(), Json::Str(self.topology.kind.label().into())),
                    ("seed".to_string(), Json::UInt(self.topology.seed)),
                ];
                if let WorkloadTopology::Campus {
                    buildings,
                    floors_per_building,
                    clients_per_floor,
                } = self.topology.kind
                {
                    o.push(("buildings".into(), Json::UInt(buildings.into())));
                    o.push(("floors_per_building".into(), Json::UInt(floors_per_building.into())));
                    o.push(("clients_per_floor".into(), Json::UInt(clients_per_floor.into())));
                }
                Json::Obj(o)
            }),
            (
                "run".into(),
                Json::obj([
                    ("seed", Json::UInt(self.run.seed)),
                    ("horizon_secs", Json::Float(self.run.horizon_secs)),
                    ("noise", Json::Float(self.run.noise)),
                ]),
            ),
            ("clients".into(), Json::Arr(self.clients.iter().map(client_to_json).collect())),
        ])
    }

    /// Serializes to TOML (the canonical on-disk form).
    pub fn to_toml(&self) -> String {
        toml::to_toml_string(&self.to_json())
    }

    /// The resolved SLO label of client `i`.
    pub fn client_label(&self, i: usize) -> String {
        match &self.clients[i].label {
            Some(l) => l.clone(),
            None => format!("client{i}"),
        }
    }

    /// Structural validation beyond field decoding: positive horizons and
    /// rates, node numbers within the topology, replication and diurnal
    /// knobs only where they mean something.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if not_positive(self.run.horizon_secs) {
            return serr("run.horizon_secs", "must be positive");
        }
        if self.clients.is_empty() {
            return serr("clients", "workload needs at least one client");
        }
        for (i, c) in self.clients.iter().enumerate() {
            let path = format!("clients[{i}]");
            validate_client(c, self.topology.kind, &path)?;
        }
        Ok(())
    }
}

/// True when `x` is not a strictly positive finite comparison result —
/// zero, negative, or NaN (NaN must fail validation, so plain `<=` would
/// let it through).
fn not_positive(x: f64) -> bool {
    x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
}

/// True when `x` is negative or NaN (anything that fails `x >= 0`).
fn not_non_negative(x: f64) -> bool {
    !matches!(x.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal))
}

fn validate_client(
    c: &ClientSpec,
    topo: WorkloadTopology,
    path: &str,
) -> Result<(), ScenarioError> {
    match topo {
        WorkloadTopology::Fig1 => {
            let ok = matches!((c.src, c.dst), (0, 2) | (0, 1) | (1, 2));
            if !ok {
                return serr(
                    join(path, "src"),
                    format!(
                        "fig1 supports the downstream pairs 0→2, 0→1, 1→2 (got {}→{})",
                        c.src, c.dst
                    ),
                );
            }
            if c.via.is_some() {
                return serr(join(path, "via"), "via relays apply to the testbed only");
            }
        }
        WorkloadTopology::Testbed => {
            for (key, n) in [("src", Some(c.src)), ("dst", Some(c.dst)), ("via", c.via)] {
                if let Some(n) = n {
                    if !(1..=22).contains(&n) {
                        return serr(join(path, key), "testbed nodes are 1..=22");
                    }
                }
            }
            if c.src == c.dst {
                return serr(join(path, "dst"), "src and dst must differ");
            }
        }
        WorkloadTopology::Campus { .. } => {
            // empower-lint: allow(D005) — campus_node_count is Some by match arm
            let n = topo.campus_node_count().expect("campus topology has a node count");
            for (key, v) in [("src", c.src), ("dst", c.dst)] {
                if u64::from(v) >= n {
                    return serr(join(path, key), format!("campus nodes are 0..{n}"));
                }
            }
            if c.src == c.dst {
                return serr(join(path, "dst"), "src and dst must differ");
            }
            if c.via.is_some() {
                return serr(join(path, "via"), "via relays apply to the testbed only");
            }
        }
    }
    if c.count == 0 {
        return serr(join(path, "count"), "must be at least 1");
    }
    if c.count > 1 && !c.kind.replicable() {
        return serr(join(path, "count"), "population kinds size themselves; count must be 1");
    }
    if not_non_negative(c.start) {
        return serr(join(path, "start"), "must be non-negative");
    }
    if let Some(d) = c.diurnal {
        if !c.kind.supports_diurnal() {
            return serr(
                join(path, "diurnal"),
                "diurnal modulation applies to elephant_mice and churn clients",
            );
        }
        if not_positive(d.period_secs) {
            return serr(join(path, "diurnal.period_secs"), "must be positive");
        }
        if !(0.0..=1.0).contains(&d.amplitude) {
            return serr(join(path, "diurnal.amplitude"), "must be in [0, 1]");
        }
    }
    match c.kind {
        ClientKind::OpenLoop { rate_mbps, .. } if not_positive(rate_mbps) => {
            serr(join(path, "rate_mbps"), "must be positive")
        }
        ClientKind::RequestResponse { requests, response_bytes, think_secs } => {
            if requests == 0 {
                serr(join(path, "requests"), "must be at least 1")
            } else if response_bytes == 0 {
                serr(join(path, "response_bytes"), "must be positive")
            } else if not_positive(think_secs) {
                serr(join(path, "think_secs"), "must be positive")
            } else {
                Ok(())
            }
        }
        ClientKind::Bulk { size_bytes: 0, tcp: false } => {
            serr(join(path, "size_bytes"), "UDP bulk transfers need an explicit size")
        }
        ClientKind::Telemetry { period_secs, payload_bytes } => {
            if not_positive(period_secs) {
                serr(join(path, "period_secs"), "must be positive")
            } else if payload_bytes == 0 {
                serr(join(path, "payload_bytes"), "must be positive")
            } else {
                Ok(())
            }
        }
        ClientKind::ElephantMice { mice, mouse_bytes, mean_gap_secs, .. } => {
            if mice > 0 && mouse_bytes == 0 {
                serr(join(path, "mouse_bytes"), "must be positive")
            } else if mice > 0 && not_positive(mean_gap_secs) {
                serr(join(path, "mean_gap_secs"), "must be positive")
            } else {
                Ok(())
            }
        }
        ClientKind::Churn { base_rate_per_sec, mean_session_secs, max_sessions } => {
            if not_positive(base_rate_per_sec) {
                serr(join(path, "base_rate_per_sec"), "must be positive")
            } else if not_positive(mean_session_secs) {
                serr(join(path, "mean_session_secs"), "must be positive")
            } else if max_sessions == 0 {
                serr(join(path, "max_sessions"), "must be at least 1")
            } else {
                Ok(())
            }
        }
        _ => Ok(()),
    }
}

fn client_from_json(v: &Json, path: String) -> Result<ClientSpec, ScenarioError> {
    let kind = match req_str(v, "kind", &path)? {
        "open_loop" => ClientKind::OpenLoop {
            rate_mbps: req_f64(v, "rate_mbps", &path)?,
            stop: opt_f64(v, "stop", &path)?,
        },
        "closed_loop" => ClientKind::ClosedLoop { stop: opt_f64(v, "stop", &path)? },
        "request_response" => ClientKind::RequestResponse {
            requests: u32_field(v, "requests", &path)?,
            response_bytes: req_u64(v, "response_bytes", &path)?,
            think_secs: req_f64(v, "think_secs", &path)?,
        },
        "bulk" => ClientKind::Bulk {
            size_bytes: req_u64(v, "size_bytes", &path)?,
            tcp: match opt_str(v, "transport", &path)? {
                None | Some("tcp") => true,
                Some("udp") => false,
                Some(other) => {
                    return serr(
                        join(&path, "transport"),
                        format!("unknown transport {other:?} (tcp|udp)"),
                    )
                }
            },
        },
        "telemetry" => ClientKind::Telemetry {
            period_secs: req_f64(v, "period_secs", &path)?,
            payload_bytes: req_u64(v, "payload_bytes", &path)?,
        },
        "elephant_mice" => ClientKind::ElephantMice {
            elephants: u32_field(v, "elephants", &path)?,
            elephant_bytes: req_u64(v, "elephant_bytes", &path)?,
            mice: u32_field(v, "mice", &path)?,
            mouse_bytes: req_u64(v, "mouse_bytes", &path)?,
            mean_gap_secs: req_f64(v, "mean_gap_secs", &path)?,
        },
        "churn" => ClientKind::Churn {
            base_rate_per_sec: req_f64(v, "base_rate_per_sec", &path)?,
            mean_session_secs: req_f64(v, "mean_session_secs", &path)?,
            max_sessions: u32_field(v, "max_sessions", &path)?,
        },
        other => return serr(join(&path, "kind"), format!("unknown client kind {other:?}")),
    };
    let diurnal = match v.get("diurnal") {
        None => None,
        Some(d) => {
            let p = join(&path, "diurnal");
            Some(Diurnal {
                period_secs: req_f64(d, "period_secs", &p)?,
                amplitude: req_f64(d, "amplitude", &p)?,
            })
        }
    };
    Ok(ClientSpec {
        label: opt_str(v, "label", &path)?.map(str::to_string),
        src: u32_field(v, "src", &path)?,
        dst: u32_field(v, "dst", &path)?,
        via: match opt_u64(v, "via", &path)? {
            None => None,
            Some(n) => Some(narrow_u32(n, &join(&path, "via"))?),
        },
        count: match opt_u64(v, "count", &path)? {
            None => 1,
            Some(n) => narrow_u32(n, &join(&path, "count"))?,
        },
        start: opt_f64(v, "start", &path)?.unwrap_or(0.0),
        kind,
        diurnal,
    })
}

fn u32_field(v: &Json, key: &str, path: &str) -> Result<u32, ScenarioError> {
    narrow_u32(req_u64(v, key, path)?, &join(path, key))
}

fn narrow_u32(n: u64, path: &str) -> Result<u32, ScenarioError> {
    u32::try_from(n).map_err(|_| ScenarioError {
        path: path.to_string(),
        message: "does not fit in 32 bits".into(),
    })
}

fn client_to_json(c: &ClientSpec) -> Json {
    let mut o: Vec<(String, Json)> = Vec::new();
    if let Some(l) = &c.label {
        o.push(("label".into(), Json::Str(l.clone())));
    }
    o.push(("kind".into(), Json::Str(c.kind.label().into())));
    o.push(("src".into(), Json::UInt(c.src.into())));
    o.push(("dst".into(), Json::UInt(c.dst.into())));
    if let Some(via) = c.via {
        o.push(("via".into(), Json::UInt(via.into())));
    }
    o.push(("count".into(), Json::UInt(c.count.into())));
    o.push(("start".into(), Json::Float(c.start)));
    match c.kind {
        ClientKind::OpenLoop { rate_mbps, stop } => {
            o.push(("rate_mbps".into(), Json::Float(rate_mbps)));
            if let Some(s) = stop {
                o.push(("stop".into(), Json::Float(s)));
            }
        }
        ClientKind::ClosedLoop { stop } => {
            if let Some(s) = stop {
                o.push(("stop".into(), Json::Float(s)));
            }
        }
        ClientKind::RequestResponse { requests, response_bytes, think_secs } => {
            o.push(("requests".into(), Json::UInt(requests.into())));
            o.push(("response_bytes".into(), Json::UInt(response_bytes)));
            o.push(("think_secs".into(), Json::Float(think_secs)));
        }
        ClientKind::Bulk { size_bytes, tcp } => {
            o.push(("size_bytes".into(), Json::UInt(size_bytes)));
            o.push(("transport".into(), Json::Str(if tcp { "tcp" } else { "udp" }.into())));
        }
        ClientKind::Telemetry { period_secs, payload_bytes } => {
            o.push(("period_secs".into(), Json::Float(period_secs)));
            o.push(("payload_bytes".into(), Json::UInt(payload_bytes)));
        }
        ClientKind::ElephantMice {
            elephants,
            elephant_bytes,
            mice,
            mouse_bytes,
            mean_gap_secs,
        } => {
            o.push(("elephants".into(), Json::UInt(elephants.into())));
            o.push(("elephant_bytes".into(), Json::UInt(elephant_bytes)));
            o.push(("mice".into(), Json::UInt(mice.into())));
            o.push(("mouse_bytes".into(), Json::UInt(mouse_bytes)));
            o.push(("mean_gap_secs".into(), Json::Float(mean_gap_secs)));
        }
        ClientKind::Churn { base_rate_per_sec, mean_session_secs, max_sessions } => {
            o.push(("base_rate_per_sec".into(), Json::Float(base_rate_per_sec)));
            o.push(("mean_session_secs".into(), Json::Float(mean_session_secs)));
            o.push(("max_sessions".into(), Json::UInt(max_sessions.into())));
        }
    }
    if let Some(d) = c.diurnal {
        o.push((
            "diurnal".into(),
            Json::obj([
                ("period_secs", Json::Float(d.period_secs)),
                ("amplitude", Json::Float(d.amplitude)),
            ]),
        ));
    }
    Json::Obj(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
schema = 1
name = "sample"

[topology]
kind = "fig1"

[run]
seed = 7
horizon_secs = 30.0

[[clients]]
label = "web"
kind = "request_response"
src = 0
dst = 2
count = 2
requests = 10
response_bytes = 200000
think_secs = 0.5

[[clients]]
kind = "churn"
src = 0
dst = 2
base_rate_per_sec = 0.2
mean_session_secs = 4.0
max_sessions = 8

[clients.diurnal]
period_secs = 15.0
amplitude = 0.5
"#;

    #[test]
    fn parses_toml_with_nested_diurnal() {
        let w = Workload::parse_str(SAMPLE).unwrap();
        assert_eq!(w.name, "sample");
        assert_eq!(w.run.seed, 7);
        assert_eq!(w.clients.len(), 2);
        assert_eq!(w.clients[0].count, 2);
        assert!(matches!(w.clients[0].kind, ClientKind::RequestResponse { requests: 10, .. }));
        let d = w.clients[1].diurnal.unwrap();
        assert_eq!(d.period_secs, 15.0);
        assert_eq!(w.client_label(0), "web");
        assert_eq!(w.client_label(1), "client1");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let w = Workload::parse_str(SAMPLE).unwrap();
        let back = Workload::from_json(&w.to_json()).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn toml_round_trip_is_lossless() {
        let w = Workload::parse_str(SAMPLE).unwrap();
        let back = Workload::parse_str(&w.to_toml()).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn rejects_bad_documents() {
        // Wrong schema version.
        assert!(Workload::parse_str("schema = 9\nname = \"x\"").is_err());
        // Unsupported fig1 pair.
        let bad = SAMPLE.replace("src = 0\ndst = 2\ncount = 2", "src = 2\ndst = 0\ncount = 2");
        assert!(Workload::parse_str(&bad).unwrap_err().path.contains("src"));
        // count on a population kind.
        let bad = SAMPLE.replace("base_rate_per_sec = 0.2", "count = 3\nbase_rate_per_sec = 0.2");
        assert!(Workload::parse_str(&bad).unwrap_err().path.contains("count"));
        // Diurnal on a kind that has no arrival process.
        let bad = SAMPLE
            .replace("kind = \"churn\"", "kind = \"closed_loop\"")
            .replace("base_rate_per_sec = 0.2\nmean_session_secs = 4.0\nmax_sessions = 8", "");
        assert!(Workload::parse_str(&bad).unwrap_err().path.contains("diurnal"));
    }
}
