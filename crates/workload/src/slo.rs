//! SLO metrics distilled from a workload run's flow statistics.
//!
//! Per client group the layer reports flow-completion-time quantiles
//! (p50/p95/p99, from the engine's per-file completion durations), goodput
//! quantiles over each flow's active window, Jain's fairness index across
//! the group's flows, and delivered volume. Everything is computed from
//! the deterministic [`SimReport`] and rounded into integers, so the
//! rendering is byte-stable and rides in telemetry manifests unchanged.

use empower_sim::SimReport;
use empower_telemetry::{CounterType, Histogram, SloSummary, Telemetry};

use crate::compile::CompiledWorkload;

/// The SLO report of one client group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSlo {
    /// The group's resolved label.
    pub label: String,
    /// Flows the group expanded into.
    pub flows: u64,
    /// Application bytes delivered in order across the group.
    pub delivered_bytes: u64,
    /// Flow/file completion times, milliseconds.
    pub fct_ms: SloSummary,
    /// Per-flow goodput over each flow's active window, kbit/s.
    pub goodput_kbps: SloSummary,
    /// Jain's fairness index over per-flow goodput, in thousandths
    /// (1000 = perfectly fair; 0 when the group moved no traffic).
    pub jain_milli: u64,
}

/// The SLO report of a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSlo {
    /// Workload name (from the document).
    pub name: String,
    /// One entry per `[[clients]]` group, in document order.
    pub clients: Vec<ClientSlo>,
}

impl WorkloadSlo {
    /// Computes the SLO report from a finished run.
    pub fn compute(name: &str, compiled: &CompiledWorkload, report: &SimReport) -> WorkloadSlo {
        let clients = compiled
            .labels
            .iter()
            .enumerate()
            .map(|(ci, label)| client_slo(ci, label, compiled, report))
            .collect();
        WorkloadSlo { name: name.to_string(), clients }
    }

    /// Registers every group's metrics as counters under
    /// `workload/<label>/...` so they appear in manifests and snapshots.
    pub fn emit(&self, tele: &Telemetry) {
        let root = tele.scope("workload");
        for c in &self.clients {
            let s = root.scope(&c.label);
            s.counter("flows", CounterType::Gauge).set(c.flows);
            s.counter("delivered_bytes", CounterType::Bytes).add(c.delivered_bytes);
            s.counter("jain_milli", CounterType::Gauge).set(c.jain_milli);
            c.fct_ms.emit(&s.scope("fct_ms"));
            c.goodput_kbps.emit(&s.scope("goodput_kbps"));
        }
    }
}

fn client_slo(
    ci: usize,
    label: &str,
    compiled: &CompiledWorkload,
    report: &SimReport,
) -> ClientSlo {
    let mut fct = Histogram::new();
    let mut goodput = Histogram::new();
    let mut rates = Vec::new();
    let mut delivered_bytes = 0u64;
    let mut flows = 0u64;
    for (fi, f) in compiled.flows.iter().enumerate() {
        if f.client != ci {
            continue;
        }
        flows += 1;
        let st = &report.flows[fi];
        delivered_bytes += st.delivered_bits / 8;
        // Completions record durations (FCTs) in seconds.
        for &d in &st.completions {
            fct.record((d * 1e3).round() as u64);
        }
        // Goodput over the flow's active window; a flow still active at
        // the end of the run is measured up to the horizon.
        let until = if st.stopped_at > 0.0 { st.stopped_at } else { report.duration };
        let window = until - st.started_at;
        let kbps = if window > 0.0 { st.delivered_bits as f64 / window / 1e3 } else { 0.0 };
        rates.push(kbps);
        goodput.record(kbps.round() as u64);
    }
    ClientSlo {
        label: label.to_string(),
        flows,
        delivered_bytes,
        fct_ms: fct.summary(),
        goodput_kbps: goodput.summary(),
        jain_milli: jain_milli(&rates),
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` in thousandths; 0 when the
/// group has no flows or moved no traffic.
pub fn jain_milli(rates: &[f64]) -> u64 {
    let n = rates.len() as f64;
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 0;
    }
    ((sum * sum) / (n * sum_sq) * 1e3).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::{LinkId, NodeId, Path};
    use empower_sim::{FlowSpecSim, FlowStats};

    fn compiled_two_groups() -> CompiledWorkload {
        let spec = || {
            FlowSpecSim::saturated(
                NodeId(0),
                NodeId(2),
                vec![Path::from_links_unchecked(vec![LinkId(0)])],
                10.0,
            )
        };
        CompiledWorkload {
            labels: vec!["a".into(), "b".into()],
            flows: vec![
                crate::compile::CompiledFlow { client: 0, spec: spec() },
                crate::compile::CompiledFlow { client: 0, spec: spec() },
                crate::compile::CompiledFlow { client: 1, spec: spec() },
            ],
        }
    }

    fn stats(bits: u64, started: f64, stopped: f64, completions: &[f64]) -> FlowStats {
        FlowStats {
            delivered_bits: bits,
            started_at: started,
            stopped_at: stopped,
            completions: completions.to_vec(),
            ..FlowStats::default()
        }
    }

    #[test]
    fn groups_aggregate_their_own_flows() {
        let compiled = compiled_two_groups();
        let report = SimReport {
            flows: vec![
                stats(8_000_000, 0.0, 10.0, &[0.5, 1.5]),
                stats(8_000_000, 0.0, 10.0, &[1.0]),
                stats(4_000_000, 0.0, 0.0, &[]),
            ],
            duration: 10.0,
        };
        let slo = WorkloadSlo::compute("t", &compiled, &report);
        assert_eq!(slo.clients.len(), 2);
        let a = &slo.clients[0];
        assert_eq!(a.flows, 2);
        assert_eq!(a.delivered_bytes, 2_000_000);
        assert_eq!(a.fct_ms.count, 3);
        // 1000 ms lands in the log bucket whose upper bound is 1007.
        assert_eq!(a.fct_ms.p50, 1007);
        // Equal goodput → perfectly fair.
        assert_eq!(a.jain_milli, 1000);
        let b = &slo.clients[1];
        assert_eq!(b.flows, 1);
        // stopped_at == 0 → window runs to the horizon.
        assert_eq!(b.goodput_kbps.max, 400);
    }

    #[test]
    fn jain_index_behaves() {
        assert_eq!(jain_milli(&[]), 0);
        assert_eq!(jain_milli(&[0.0, 0.0]), 0);
        assert_eq!(jain_milli(&[5.0, 5.0, 5.0]), 1000);
        // One active flow out of two → 1/2.
        assert_eq!(jain_milli(&[10.0, 0.0]), 500);
    }

    #[test]
    fn slo_emits_scoped_counters() {
        let compiled = compiled_two_groups();
        let report = SimReport {
            flows: vec![
                stats(800_000, 0.0, 10.0, &[0.25]),
                stats(800_000, 0.0, 10.0, &[]),
                stats(0, 0.0, 0.0, &[]),
            ],
            duration: 10.0,
        };
        let slo = WorkloadSlo::compute("t", &compiled, &report);
        let tele = Telemetry::enabled();
        slo.emit(&tele);
        let snap = tele.snapshot();
        assert_eq!(snap.value("workload/a/flows"), Some(2));
        assert_eq!(snap.value("workload/a/fct_ms/count"), Some(1));
        assert_eq!(snap.value("workload/a/fct_ms/p50"), Some(250));
        assert_eq!(snap.value("workload/b/jain_milli"), Some(0));
    }
}
