#![forbid(unsafe_code)]
//! The sharded-simulation equivalence gate (DESIGN.md §13): the sharded
//! engine must produce **byte-identical** `SimReport`s, telemetry
//! manifests and canonical packet traces
//!
//! * across shard counts 1/2/4/8 on the full corpus, and
//! * versus the single-threaded engine on the full corpus and on a
//!   generated 1000+-node campus.
//!
//! A violation means a scale experiment rerun with a different
//! `EMPOWER_SIM_SHARDS` (or on a box with a different core count) would
//! silently change its figures — the exact bug class the deterministic
//! merge rules exist to rule out.
//!
//! Set `EMPOWER_SIM_EQUIV_SCENARIOS=<n>` to trim the corpus for quick
//! local iterations; CI runs the full set.

use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::campus::{campus, CampusConfig};
use empower_model::{CarrierSense, InterferenceModel, Path};
use empower_sim::corpus::{corpus, run_scenario, ShardedN as Sharded};
use empower_sim::{FlowSpecSim, ShardedSimulation, SimConfig, Simulation, Trace};
use empower_telemetry::{Json, Manifest, Telemetry};

fn scenario_budget() -> usize {
    std::env::var("EMPOWER_SIM_EQUIV_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Re-sorts a JSONL trace into canonical `(time, line)` order, the order
/// the sharded engine emits natively (see `Trace::canonical_jsonl`).
fn canon(trace: &str) -> String {
    let mut lines: Vec<(u64, &str)> = trace
        .lines()
        .map(|l| {
            let v = Json::parse(l).expect("trace line parses");
            let t = v.get("t").and_then(|t| t.as_f64()).expect("trace line has a time");
            (t.to_bits(), l)
        })
        .collect();
    lines.sort();
    let mut out = String::new();
    for (_, l) in lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[test]
fn sharded_engine_is_byte_identical_across_shard_counts_on_the_corpus() {
    let scenarios = corpus();
    let n = scenario_budget().min(scenarios.len());
    for s in &scenarios[..n] {
        let one = run_scenario::<Sharded<1>>(s);
        let two = run_scenario::<Sharded<2>>(s);
        let four = run_scenario::<Sharded<4>>(s);
        let eight = run_scenario::<Sharded<8>>(s);
        assert_eq!(one, two, "{}: shards=2 diverged from shards=1", s.name);
        assert_eq!(one, four, "{}: shards=4 diverged from shards=1", s.name);
        assert_eq!(one, eight, "{}: shards=8 diverged from shards=1", s.name);
    }
}

#[test]
fn sharded_engine_matches_single_threaded_on_the_corpus() {
    let scenarios = corpus();
    let n = scenario_budget().min(scenarios.len());
    for s in &scenarios[..n] {
        let single = run_scenario::<Simulation>(s);
        let sharded = run_scenario::<Sharded<4>>(s);
        assert_eq!(single.report, sharded.report, "{}: SimReport diverged", s.name);
        assert_eq!(single.manifest, sharded.manifest, "{}: telemetry manifest diverged", s.name);
        // The sharded trace is canonical by construction; canonicalize the
        // single-threaded one for comparison.
        assert_eq!(canon(&single.trace), sharded.trace, "{}: packet trace diverged", s.name);
    }
}

/// The campus-scale gate: a generated 1011-node topology (10 buildings ×
/// 10 floors × 9 clients), one saturated router→client download per
/// building, short horizon. Byte-identity across shard counts AND versus
/// the single-threaded engine — and the plan must actually spread the
/// load (otherwise this gate would pass vacuously with one worker).
#[test]
fn campus_1000_nodes_is_byte_identical_across_shard_counts() {
    let mut rng = StdRng::seed_from_u64(42);
    let t = campus(&mut rng, &CampusConfig::new(10, 10, 9));
    assert!(t.net.node_count() >= 1000, "campus should be 1000+ nodes");
    let imap = CarrierSense::default().build_map(&t.net);

    // One hybrid multipath download on the first floor of each building.
    let mut specs = Vec::new();
    for b in 0..10 {
        let fl = &t.floors[b * 10];
        let c = fl.clients[0];
        let routes: Vec<Path> = t
            .net
            .out_links(fl.router)
            .filter(|l| l.to == c)
            .map(|l| Path::new(&t.net, vec![l.id]).expect("direct link is a valid path"))
            .collect();
        specs.push(FlowSpecSim::saturated(fl.router, c, routes, 2.0));
    }

    let run_single = || {
        let mut sim = Simulation::new(t.net.clone(), imap.clone(), SimConfig::default());
        sim.attach_telemetry(Telemetry::enabled());
        sim.attach_trace(Trace::new());
        for s in &specs {
            sim.add_flow(s.clone());
        }
        sim.run_until(2.0);
        let mut m = Manifest::new("campus_gate");
        m.attach_counters(sim.telemetry());
        let trace = sim.take_trace().map(|t| t.canonical_jsonl()).unwrap_or_default();
        (format!("{:?}", sim.report(2.0)), trace, m.render())
    };
    let run_sharded = |shards: u32| {
        let mut sim = ShardedSimulation::with_shards(
            t.net.clone(),
            imap.clone(),
            SimConfig::default(),
            shards,
        );
        sim.attach_telemetry(Telemetry::enabled());
        sim.attach_trace(Trace::new());
        for s in &specs {
            sim.add_flow(s.clone());
        }
        sim.run_until(2.0);
        let mut m = Manifest::new("campus_gate");
        m.attach_counters(sim.telemetry());
        let used = sim.shards_used();
        let trace = sim.take_trace().map(|t| t.to_jsonl()).unwrap_or_default();
        ((format!("{:?}", sim.report(2.0)), trace, m.render()), used)
    };

    let single = run_single();
    assert!(!single.1.is_empty(), "campus run should produce trace events");
    let (base, used1) = run_sharded(1);
    assert_eq!(used1, 1);
    assert_eq!(single, base, "shards=1 diverged from the single-threaded engine");
    for shards in [2, 4, 8] {
        let (out, used) = run_sharded(shards);
        assert!(used >= 2, "shards={shards} should spread flows over >1 worker");
        assert_eq!(base, out, "shards={shards} diverged from shards=1");
    }
}
