//! The PR-5 safety net, doubling since the forwarding-graph redesign as
//! the graph-vs-monolith equivalence gate: every corpus scenario must
//! produce **byte-identical** results on the optimized engine (whose
//! datapath stages now run as `empower-datapath` graph nodes behind
//! `FlowDatapath`) and on the retained reference engine (the frozen
//! pre-refactor monolith, still driving `RouteScheduler`/`ReorderBuffer`/
//! `AckCollector`/`DelayEqualizer` directly) — the full `SimReport` debug
//! rendering, the packet trace JSONL and the telemetry manifest.
//!
//! Set `EMPOWER_SIM_EQUIV_SCENARIOS=<n>` to trim the corpus for quick local
//! iterations; CI runs the full set.

use empower_sim::corpus::{corpus, run_scenario};
use empower_sim::{ReferenceSimulation, Simulation};

fn scenario_budget() -> usize {
    std::env::var("EMPOWER_SIM_EQUIV_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

#[test]
fn optimized_engine_is_byte_identical_to_reference_on_the_corpus() {
    let scenarios = corpus();
    let n = scenario_budget().min(scenarios.len());
    for s in &scenarios[..n] {
        let opt = run_scenario::<Simulation>(s);
        let reference = run_scenario::<ReferenceSimulation>(s);
        assert_eq!(opt.report, reference.report, "{}: SimReport diverged", s.name);
        assert_eq!(opt.trace, reference.trace, "{}: packet trace diverged", s.name);
        assert_eq!(opt.manifest, reference.manifest, "{}: telemetry manifest diverged", s.name);
    }
}

#[test]
fn corpus_runs_are_reproducible_within_one_engine() {
    // A weaker but faster invariant checked on one scenario per topology
    // family: the same descriptor renders identically twice (no ambient
    // nondeterminism in either engine).
    let scenarios = corpus();
    for name in ["fig1_multipath", "testbed_pair_1_4_13"] {
        let s = scenarios.iter().find(|s| s.name == name).expect("corpus scenario exists");
        assert_eq!(run_scenario::<Simulation>(s), run_scenario::<Simulation>(s), "{name}");
        assert_eq!(
            run_scenario::<ReferenceSimulation>(s),
            run_scenario::<ReferenceSimulation>(s),
            "{name}"
        );
    }
}
