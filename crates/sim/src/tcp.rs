//! Mini-TCP: a Reno-style window-based transport (§6.4 substitution).
//!
//! The paper runs Linux TCP over the EMPoWER datapath; here a compact Reno
//! state machine reproduces the two interaction mechanisms §6.4 analyses:
//!
//! 1. EMPoWER drops packets at the source when the application exceeds the
//!    flow's admitted rate; TCP perceives those drops as congestion and
//!    adapts — so TCP's steady-state rate follows the controller's.
//! 2. Cross-route delay skew makes packets from the fast route wait for
//!    stragglers; without delay equalization the resulting RTT inflation
//!    and spurious timeouts hurt throughput.
//!
//! The machine implements slow start, congestion avoidance, fast
//! retransmit/recovery (3 dup-ACKs), Karn-sampled RTT with the standard
//! RTO estimator, and exponential RTO backoff. Sequence numbers count MSS
//! segments.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transport parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial congestion window, segments.
    pub init_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub init_ssthresh: f64,
    /// Minimum retransmission timeout, seconds.
    pub rto_min: f64,
    /// Initial RTO before any RTT sample, seconds.
    pub rto_init: f64,
    /// Congestion-window cap, segments.
    pub max_cwnd: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            init_cwnd: 2.0,
            init_ssthresh: 64.0,
            rto_min: 0.2,
            rto_init: 1.0,
            max_cwnd: 512.0,
        }
    }
}

/// Sender-side Reno state machine.
#[derive(Debug, Clone)]
pub struct TcpSender {
    config: TcpConfig,
    cwnd: f64,
    ssthresh: f64,
    /// Next brand-new sequence number.
    next_seq: u32,
    /// Cumulative ACK received so far (= receiver's next expected).
    highest_acked: u32,
    dup_acks: u32,
    in_recovery: bool,
    recover_point: u32,
    /// Outstanding segments → last transmission time.
    in_flight: BTreeMap<u32, f64>,
    /// Segments queued for retransmission.
    retx: VecDeque<u32>,
    /// Karn RTT probe: (seq, send time), never a retransmission.
    probe: Option<(u32, f64)>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// Total segments to transfer (`None` = unbounded).
    total_segments: Option<u64>,
}

impl TcpSender {
    /// A sender transferring `total_segments` segments (`None` = endless).
    pub fn new(config: TcpConfig, total_segments: Option<u64>) -> Self {
        TcpSender {
            cwnd: config.init_cwnd,
            ssthresh: config.init_ssthresh,
            next_seq: 0,
            highest_acked: 0,
            dup_acks: 0,
            in_recovery: false,
            recover_point: 0,
            in_flight: BTreeMap::new(),
            retx: VecDeque::new(),
            probe: None,
            srtt: None,
            rttvar: 0.0,
            rto: config.rto_init,
            total_segments,
            config,
        }
    }

    /// Current congestion window, segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current RTO, seconds.
    pub fn rto(&self) -> f64 {
        self.rto
    }

    /// Smoothed RTT, if sampled.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// True once the whole transfer is acknowledged.
    pub fn done(&self) -> bool {
        self.total_segments.is_some_and(|t| self.highest_acked as u64 >= t)
    }

    /// The next segment to put on the wire under the current window, or
    /// `None` if the window is full / nothing to send. Caller must follow
    /// up with [`TcpSender::on_sent`].
    pub fn next_to_send(&mut self) -> Option<(u32, bool)> {
        if let Some(&seq) = self.retx.front() {
            // Retransmissions are window-paced too, except the first one of
            // a recovery episode (it replaces a segment just removed from
            // the flight, so the window always admits it).
            if (self.in_flight.len() as f64) < self.cwnd.floor().max(1.0) {
                return Some((seq, true));
            }
            return None;
        }
        if (self.in_flight.len() as f64) < self.cwnd.floor()
            && self.total_segments.is_none_or(|t| (self.next_seq as u64) < t)
        {
            return Some((self.next_seq, false));
        }
        None
    }

    /// Records a transmission decided by [`TcpSender::next_to_send`].
    pub fn on_sent(&mut self, seq: u32, now: f64, is_retx: bool) {
        if is_retx {
            let front = self.retx.pop_front();
            debug_assert_eq!(front, Some(seq));
        } else {
            debug_assert_eq!(seq, self.next_seq);
            self.next_seq += 1;
            if self.probe.is_none() {
                self.probe = Some((seq, now));
            }
        }
        self.in_flight.insert(seq, now);
    }

    /// Processes a cumulative ACK (`ack` = receiver's next expected seq).
    pub fn on_ack(&mut self, ack: u32, now: f64) {
        if ack > self.highest_acked {
            let newly = ack - self.highest_acked;
            self.highest_acked = ack;
            self.dup_acks = 0;
            self.in_flight.retain(|&s, _| s >= ack);
            self.retx.retain(|&s| s >= ack);
            // RTT sample (Karn: only from a never-retransmitted probe).
            if let Some((pseq, ptime)) = self.probe {
                if ack > pseq {
                    let sample = (now - ptime).max(1e-6);
                    match self.srtt {
                        None => {
                            self.srtt = Some(sample);
                            self.rttvar = sample / 2.0;
                        }
                        Some(srtt) => {
                            self.rttvar = 0.75 * self.rttvar + 0.25 * (sample - srtt).abs();
                            self.srtt = Some(0.875 * srtt + 0.125 * sample);
                        }
                    }
                    self.probe = None;
                }
            }
            // Progress cancels any RTO backoff: recompute from the
            // estimator (falls back to the initial RTO before any sample).
            self.rto = match self.srtt {
                Some(srtt) => (srtt + 4.0 * self.rttvar).max(self.config.rto_min),
                None => self.config.rto_init,
            };
            if self.in_recovery {
                if ack >= self.recover_point {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // Partial ACK: retransmit the next hole immediately.
                    if !self.retx.contains(&ack) {
                        self.retx.push_back(ack);
                    }
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd + newly as f64).min(self.config.max_cwnd);
            } else {
                self.cwnd = (self.cwnd + newly as f64 / self.cwnd).min(self.config.max_cwnd);
            }
        } else if ack == self.highest_acked {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                // Fast retransmit + recovery.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.in_recovery = true;
                self.recover_point = self.next_seq;
                if !self.retx.contains(&ack) {
                    self.retx.push_front(ack);
                }
                self.in_flight.remove(&ack);
            } else if self.in_recovery {
                self.cwnd = (self.cwnd + 1.0).min(self.config.max_cwnd);
            }
        }
    }

    /// Checks the retransmission timer. Returns the next time the timer
    /// should be checked, or `None` when nothing is outstanding.
    pub fn on_rto_check(&mut self, now: f64) -> Option<f64> {
        let (&oldest_seq, &sent_at) = self.in_flight.iter().next()?;
        let _ = oldest_seq;
        if now + 1e-9 >= sent_at + self.rto {
            // Timeout: multiplicative backoff, window collapse, go-back-N —
            // every outstanding segment is assumed lost and queued for
            // (window-paced) retransmission. Without this, a burst of
            // source-side drops leaves holes that only heal one per
            // (exponentially backed-off) RTO and the connection starves.
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = 1.0;
            self.rto = (self.rto * 2.0).min(60.0);
            self.in_recovery = false;
            self.dup_acks = 0;
            self.probe = None;
            for (&seq, _) in self.in_flight.iter() {
                if !self.retx.contains(&seq) {
                    self.retx.push_back(seq);
                }
            }
            self.in_flight.clear();
            let mut sorted: Vec<u32> = self.retx.drain(..).collect();
            sorted.sort_unstable();
            self.retx = sorted.into();
            Some(now + self.rto)
        } else {
            Some(sent_at + self.rto)
        }
    }
}

/// Receiver-side reassembly + cumulative ACK generation.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    next_expected: u32,
    out_of_order: BTreeSet<u32>,
    delivered: u64,
}

impl TcpReceiver {
    /// Fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segments delivered in order to the application.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Accepts a segment; returns the cumulative ACK to send back.
    pub fn on_segment(&mut self, seq: u32) -> u32 {
        if seq == self.next_expected {
            self.next_expected += 1;
            self.delivered += 1;
            while self.out_of_order.remove(&self.next_expected) {
                self.next_expected += 1;
                self.delivered += 1;
            }
        } else if seq > self.next_expected {
            self.out_of_order.insert(seq);
        }
        self.next_expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_sends(s: &mut TcpSender, now: f64) -> Vec<u32> {
        let mut sent = Vec::new();
        while let Some((seq, retx)) = s.next_to_send() {
            s.on_sent(seq, now, retx);
            sent.push(seq);
        }
        sent
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(TcpConfig::default(), None);
        let mut r = TcpReceiver::new();
        let mut now = 0.0;
        let mut window_sizes = Vec::new();
        for _ in 0..4 {
            let sent = drain_sends(&mut s, now);
            window_sizes.push(sent.len());
            now += 0.05;
            for seq in sent {
                let ack = r.on_segment(seq);
                s.on_ack(ack, now);
            }
        }
        assert_eq!(window_sizes, vec![2, 4, 8, 16]);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        // start in CA immediately
        let cfg = TcpConfig { init_ssthresh: 2.0, ..Default::default() };
        let mut s = TcpSender::new(cfg, None);
        let mut r = TcpReceiver::new();
        let mut now = 0.0;
        let mut sizes = Vec::new();
        for _ in 0..6 {
            let sent = drain_sends(&mut s, now);
            sizes.push(sent.len());
            now += 0.05;
            for seq in sent {
                s.on_ack(r.on_segment(seq), now);
            }
        }
        // Per-ACK arithmetic: cwnd 2 → 2.9 → 3.9 → 4.9 → … (≈ +1 per RTT,
        // visible in the floor one round late).
        assert_eq!(sizes, vec![2, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut s = TcpSender::new(TcpConfig::default(), None);
        let mut r = TcpReceiver::new();
        let mut now = 0.0;
        // Grow the window a bit.
        for _ in 0..3 {
            let sent = drain_sends(&mut s, now);
            now += 0.05;
            for seq in sent {
                s.on_ack(r.on_segment(seq), now);
            }
        }
        let cwnd_before = s.cwnd();
        // Send a window; lose the first segment of it.
        let sent = drain_sends(&mut s, now);
        assert!(sent.len() >= 4, "window too small: {}", sent.len());
        now += 0.05;
        for &seq in &sent[1..] {
            s.on_ack(r.on_segment(seq), now);
        }
        // Dup ACKs for the hole → fast retransmit of the lost seq.
        let (seq, retx) = s.next_to_send().expect("retransmission pending");
        assert_eq!(seq, sent[0]);
        assert!(retx);
        assert!(s.in_recovery, "window inflation during recovery is expected");
        // Complete recovery: cwnd deflates to ssthresh = half the old window.
        s.on_sent(seq, now, true);
        now += 0.05;
        s.on_ack(r.on_segment(seq), now);
        assert!(!s.in_recovery);
        assert!(s.cwnd() < cwnd_before, "{} !< {cwnd_before}", s.cwnd());
    }

    #[test]
    fn timeout_collapses_the_window() {
        let mut s = TcpSender::new(TcpConfig::default(), None);
        let sent = drain_sends(&mut s, 0.0);
        assert_eq!(sent.len(), 2);
        let rto = s.rto();
        // No ACKs; fire the timer after the RTO.
        let next = s.on_rto_check(rto + 0.01).unwrap();
        assert_eq!(s.cwnd(), 1.0);
        assert!(s.rto() > rto, "backoff");
        assert!(next > rto);
        // The lost segment is queued for retransmission.
        let (seq, retx) = s.next_to_send().unwrap();
        assert_eq!((seq, retx), (0, true));
    }

    #[test]
    fn rtt_estimation_sets_rto() {
        let mut s = TcpSender::new(TcpConfig::default(), None);
        let mut r = TcpReceiver::new();
        let mut now = 0.0;
        for _ in 0..10 {
            let sent = drain_sends(&mut s, now);
            now += 0.08; // constant 80 ms RTT
            for seq in sent {
                s.on_ack(r.on_segment(seq), now);
            }
        }
        let srtt = s.srtt().unwrap();
        assert!((srtt - 0.08).abs() < 0.01, "srtt {srtt}");
        assert!((s.rto() - s.config.rto_min).abs() < 0.11, "rto {}", s.rto());
    }

    #[test]
    fn finite_transfer_completes() {
        let mut s = TcpSender::new(TcpConfig::default(), Some(20));
        let mut r = TcpReceiver::new();
        let mut now = 0.0;
        for _ in 0..20 {
            let sent = drain_sends(&mut s, now);
            now += 0.05;
            for seq in sent {
                s.on_ack(r.on_segment(seq), now);
            }
            if s.done() {
                break;
            }
        }
        assert!(s.done());
        assert_eq!(r.delivered(), 20);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_segment(0), 1);
        assert_eq!(r.on_segment(2), 1); // hole at 1 → dup ack
        assert_eq!(r.on_segment(3), 1);
        assert_eq!(r.on_segment(1), 4); // hole filled → jump
        assert_eq!(r.delivered(), 4);
    }

    #[test]
    fn duplicate_segments_do_not_double_count() {
        let mut r = TcpReceiver::new();
        r.on_segment(0);
        r.on_segment(0);
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.on_segment(1), 2);
    }
}
