//! The event queue: a deterministic time-ordered heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use empower_model::{LinkId, NodeId};

/// Simulator events.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A frame finishes transmitting on `link`.
    TxEnd { link: LinkId },
    /// The application of flow `flow` offers its next packet.
    Emit { flow: usize },
    /// The 100 ms control slot boundary: demand measurement, price
    /// broadcasts, dual updates, ACKs, controller steps, stats sampling.
    ControlTick,
    /// Failure injection / capacity change.
    LinkChange { link: LinkId, capacity_mbps: f64 },
    /// Node crash (`up = false`) or recovery (`up = true`): every link
    /// adjacent to `node` goes down with it and comes back at the capacity
    /// it had when the node crashed.
    NodeChange { node: NodeId, up: bool },
    /// Delay-equalization release of a held packet into the reorder buffer.
    Release { flow: usize, route: usize, seq: u32, price: f64, created_at: f64 },
    /// A TCP acknowledgement arrives back at the sender of `flow`.
    TcpAckArrival { flow: usize, ack_seq: u32, dup: bool },
    /// TCP retransmission-timeout check for `flow`.
    TcpRtoCheck { flow: usize },
    /// Start generating traffic for `flow`.
    FlowStart { flow: usize },
    /// Stop generating traffic for `flow`.
    FlowStop { flow: usize },
}

#[derive(Debug)]
struct Scheduled {
    at: f64,
    /// Insertion counter: deterministic FIFO tie-break at equal times.
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.total_cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    counter: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at` (seconds).
    pub fn push(&mut self, at: f64, event: Event) {
        debug_assert!(at.is_finite() && at >= 0.0, "bad event time {at}");
        self.heap.push(Scheduled { at, seq: self.counter, event });
        self.counter += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::ControlTick);
        q.push(1.0, Event::Emit { flow: 0 });
        q.push(3.0, Event::ControlTick);
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Emit { flow: 0 });
        q.push(1.0, Event::Emit { flow: 1 });
        q.push(1.0, Event::Emit { flow: 2 });
        for expect in 0..3 {
            match q.pop().unwrap().1 {
                Event::Emit { flow } => assert_eq!(flow, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::ControlTick);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }
}
