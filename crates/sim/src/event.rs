//! The event queue: a deterministic timer wheel keyed to the 100 ms
//! control-slot structure, with a sorted overflow heap for far-future
//! events and a retained [`ReferenceEventQueue`] (the pre-optimization
//! binary heap) for equivalence testing.
//!
//! Both queues implement the same contract: events pop in ascending
//! `(time, insertion order)` — equal-time events are FIFO. The wheel
//! version is allocation-free in steady state (bucket `Vec`s are reused
//! across laps) and locates the next event with a 4-word occupancy-bitmap
//! scan instead of a heap sift.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use empower_model::{LinkId, NodeId};

/// Simulator events. Hot variants are kept small (`u32` indices, `f32`
/// price — lossless, the wire header stores `f32`) so a [`Scheduled`]
/// entry stays within one cache line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A frame finishes transmitting on `link`.
    TxEnd { link: LinkId },
    /// The application of flow `flow` offers its next packet.
    Emit { flow: u32 },
    /// The 100 ms control slot boundary: demand measurement, price
    /// broadcasts, dual updates, ACKs, controller steps, stats sampling.
    ControlTick,
    /// Failure injection / capacity change.
    LinkChange { link: LinkId, capacity_mbps: f64 },
    /// Node crash (`up = false`) or recovery (`up = true`): every link
    /// adjacent to `node` goes down with it and comes back at the capacity
    /// it had when the node crashed.
    NodeChange { node: NodeId, up: bool },
    /// Delay-equalization release of a held packet into the reorder buffer.
    Release { flow: u32, route: u16, seq: u32, price: f32, created_at: f64 },
    /// A TCP acknowledgement arrives back at the sender of `flow`.
    TcpAckArrival { flow: u32, ack_seq: u32, dup: bool },
    /// TCP retransmission-timeout check for `flow`.
    TcpRtoCheck { flow: u32 },
    /// Start generating traffic for `flow`.
    FlowStart { flow: u32 },
    /// Stop generating traffic for `flow`.
    FlowStop { flow: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: f64,
    /// Insertion counter: deterministic FIFO tie-break at equal times.
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.total_cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Wheel slots. 256 buckets of `0.1 s / 64` each cover a 400 ms horizon —
/// four control slots — so every steady-state event (frame service times,
/// ACK delays, the next `ControlTick`) lands in the wheel; only far-future
/// injections (`FlowStop`, scenario faults) hit the overflow heap.
const WHEEL_BUCKETS: usize = 256;
/// Occupancy-bitmap words covering [`WHEEL_BUCKETS`] slots.
const OCC_WORDS: usize = WHEEL_BUCKETS / 64;
/// Bucket width, seconds: 1/64th of the 100 ms control slot.
const BUCKET_SECS: f64 = 0.1 / 64.0;

/// Time-ordered event queue with deterministic tie-breaking: a 256-slot
/// timer wheel over absolute bucket indices (`cursor` tracks the earliest
/// non-empty bucket) plus a sorted overflow heap for events beyond the
/// wheel horizon. Overflow entries are lazily promoted into the wheel as
/// the cursor advances, before any pop or peek can observe them out of
/// order.
#[derive(Debug)]
pub struct EventQueue {
    /// `buckets[b % WHEEL_BUCKETS]` holds every wheel event whose absolute
    /// bucket is `b`, for `cursor <= b < cursor + WHEEL_BUCKETS`.
    buckets: Vec<Vec<Scheduled>>,
    /// One bit per slot: set iff the slot's bucket is non-empty.
    occupied: [u64; OCC_WORDS],
    /// Absolute bucket index of the earliest possibly-occupied slot.
    cursor: u64,
    /// Events scheduled beyond the wheel horizon, earliest first.
    overflow: BinaryHeap<Scheduled>,
    /// Insertion counter shared by wheel and overflow entries.
    counter: u64,
    /// Number of events currently stored in wheel buckets.
    wheel_len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; OCC_WORDS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            counter: 0,
            wheel_len: 0,
        }
    }

    /// Schedules `event` at absolute time `at` (seconds).
    pub fn push(&mut self, at: f64, event: Event) {
        debug_assert!(at.is_finite() && at >= 0.0, "bad event time {at}");
        let seq = self.counter;
        self.counter += 1;
        self.insert(Scheduled { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let (slot, idx) = self.locate()?;
        let s = self.buckets[slot].swap_remove(idx);
        self.wheel_len -= 1;
        if self.buckets[slot].is_empty() {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        Some((s.at, s.event))
    }

    /// Time of the next event without removing it. Advances the internal
    /// cursor (hence `&mut`) but consumes nothing.
    pub fn peek_time(&mut self) -> Option<f64> {
        let (slot, idx) = self.locate()?;
        Some(self.buckets[slot][idx].at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest absolute bucket index handed out: keeps the horizon
    /// arithmetic (`cursor + WHEEL_BUCKETS`, and the same sum after a
    /// cursor jump in [`EventQueue::promote`]) overflow-free.
    const MAX_BUCKET: u64 = u64::MAX - 2 * WHEEL_BUCKETS as u64;

    fn bucket_of(at: f64) -> u64 {
        // Far-future saturation guard: beyond ~2.8e16 s the `as u64` cast
        // of `at / BUCKET_SECS` would saturate to `u64::MAX`, and the
        // promotion horizon `cursor + WHEEL_BUCKETS` would then overflow —
        // a panic in debug builds and, with wrapping, a cursor the
        // occupancy scan can never reach in release builds, stranding
        // every overflow event. Collapsing such times into the last
        // representable bucket is exact: the per-bucket `(at, seq)`
        // min-scan still pops them in time-then-FIFO order.
        let b = at / BUCKET_SECS;
        if b >= Self::MAX_BUCKET as f64 {
            Self::MAX_BUCKET
        } else {
            b as u64
        }
    }

    /// Files an entry into its wheel bucket, or into the overflow heap if
    /// it lies beyond the horizon. Entries whose natural bucket is behind
    /// the cursor (late pushes at the current instant, after the cursor
    /// skipped their bucket) are clamped into the cursor bucket; the
    /// per-bucket `(at, seq)` min-scan keeps them correctly ordered, and
    /// every bucket between their natural slot and the cursor is provably
    /// empty (the cursor only advances over empty buckets).
    fn insert(&mut self, s: Scheduled) {
        let b = Self::bucket_of(s.at).max(self.cursor);
        if b >= self.cursor + WHEEL_BUCKETS as u64 {
            self.overflow.push(s);
            return;
        }
        let slot = (b % WHEEL_BUCKETS as u64) as usize;
        self.buckets[slot].push(s);
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
        self.wheel_len += 1;
    }

    /// Moves every overflow entry whose bucket has entered the wheel
    /// horizon into its bucket. When the wheel is empty the cursor first
    /// jumps to the earliest overflow bucket, so promotion always lands
    /// inside the (new) horizon and overflow entries can never pop before
    /// a wheel entry they precede in time.
    fn promote(&mut self) {
        if self.wheel_len == 0 {
            if let Some(s) = self.overflow.peek() {
                self.cursor = self.cursor.max(Self::bucket_of(s.at));
            }
        }
        let horizon = self.cursor + WHEEL_BUCKETS as u64;
        while self.overflow.peek().is_some_and(|s| Self::bucket_of(s.at) < horizon) {
            if let Some(s) = self.overflow.pop() {
                self.insert(s);
            }
        }
    }

    /// Finds the earliest pending event: promotes due overflow entries,
    /// advances the cursor to the first occupied slot, and returns the
    /// `(slot, index)` of the bucket's `(at, seq)` minimum.
    fn locate(&mut self) -> Option<(usize, usize)> {
        if self.wheel_len == 0 && self.overflow.is_empty() {
            return None;
        }
        self.promote();
        let cslot = (self.cursor % WHEEL_BUCKETS as u64) as usize;
        let slot = self.next_occupied_from(cslot)?;
        let delta = (slot + WHEEL_BUCKETS - cslot) % WHEEL_BUCKETS;
        self.cursor += delta as u64;
        let bucket = &self.buckets[slot];
        let mut best = 0;
        for (i, s) in bucket.iter().enumerate().skip(1) {
            let b = &bucket[best];
            if s.at.total_cmp(&b.at).then_with(|| s.seq.cmp(&b.seq)) == Ordering::Less {
                best = i;
            }
        }
        Some((slot, best))
    }

    /// Circular occupancy-bitmap scan: first occupied slot at or after
    /// `start`, wrapping once around the wheel.
    fn next_occupied_from(&self, start: usize) -> Option<usize> {
        let (sw, sb) = (start / 64, start % 64);
        let first = self.occupied[sw] & (!0u64 << sb);
        if first != 0 {
            return Some(sw * 64 + first.trailing_zeros() as usize);
        }
        for step in 1..=OCC_WORDS {
            let w = (sw + step) % OCC_WORDS;
            let mut word = self.occupied[w];
            if step == OCC_WORDS {
                // Wrapped back to the start word: only bits below `start`.
                word &= !(!0u64 << sb);
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// The pre-optimization event queue: a plain binary heap. Retained as the
/// ordering oracle for the timer wheel (property-tested to pop identical
/// sequences) and as the queue behind [`crate::ReferenceSimulation`].
#[derive(Debug, Default)]
pub struct ReferenceEventQueue {
    heap: BinaryHeap<Scheduled>,
    counter: u64,
}

impl ReferenceEventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at` (seconds).
    pub fn push(&mut self, at: f64, event: Event) {
        debug_assert!(at.is_finite() && at >= 0.0, "bad event time {at}");
        self.heap.push(Scheduled { at, seq: self.counter, event });
        self.counter += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::ControlTick);
        q.push(1.0, Event::Emit { flow: 0 });
        q.push(3.0, Event::ControlTick);
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Emit { flow: 0 });
        q.push(1.0, Event::Emit { flow: 1 });
        q.push(1.0, Event::Emit { flow: 2 });
        for expect in 0..3 {
            match q.pop().unwrap().1 {
                Event::Emit { flow } => assert_eq!(flow, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::ControlTick);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        let mut q = EventQueue::new();
        // Beyond the 400 ms wheel horizon from t=0.
        q.push(10.0, Event::Emit { flow: 10 });
        q.push(0.05, Event::Emit { flow: 0 });
        q.push(3.0, Event::Emit { flow: 3 });
        q.push(300.0, Event::Emit { flow: 300 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(at, _)| at)).collect();
        assert_eq!(order, vec![0.05, 3.0, 10.0, 300.0]);
    }

    /// Regression: an overflow entry must not pop before a later wheel
    /// push that precedes it in time, even after the cursor jumps forward
    /// to reach the overflow region.
    #[test]
    fn overflow_window_extension_keeps_order() {
        let mut q = EventQueue::new();
        q.push(50.0, Event::Emit { flow: 50 });
        q.push(0.01, Event::Emit { flow: 0 });
        // Pop the near event: cursor is now at bucket(0.01).
        assert!(matches!(q.pop(), Some((_, Event::Emit { flow: 0 }))));
        // Push between now and the overflow entry, inside a future lap.
        q.push(49.9, Event::Emit { flow: 49 });
        q.push(0.02, Event::Emit { flow: 1 });
        let flows: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Emit { flow } => flow,
                other => panic!("unexpected {other:?}"),
            })
        })
        .collect();
        assert_eq!(flows, vec![1, 49, 50]);
    }

    /// Late pushes at the current instant (after the cursor advanced past
    /// their natural bucket) are clamped into the cursor bucket and still
    /// pop before everything later.
    #[test]
    fn late_push_at_current_time_pops_first() {
        let mut q = EventQueue::new();
        q.push(0.2, Event::Emit { flow: 2 });
        assert_eq!(q.peek_time(), Some(0.2)); // cursor advanced to bucket(0.2)
        q.push(0.11, Event::Emit { flow: 1 }); // natural bucket already skipped
        assert!(matches!(q.pop(), Some((_, Event::Emit { flow: 1 }))));
        assert!(matches!(q.pop(), Some((_, Event::Emit { flow: 2 }))));
    }

    /// Regression for the far-future saturation guard: times past the
    /// `bucket_of` cast range used to overflow the promotion horizon
    /// (debug panic; stranded overflow events in release). They must pop
    /// in exact `(time, insertion)` order like any other event.
    #[test]
    fn saturating_far_future_times_pop_in_order() {
        let mut q = EventQueue::new();
        q.push(1.0e18, Event::Emit { flow: 2 });
        q.push(0.01, Event::Emit { flow: 0 });
        q.push(9.0e18, Event::Emit { flow: 3 });
        q.push(5.0, Event::Emit { flow: 1 });
        q.push(1.0e18, Event::Emit { flow: 4 }); // equal-time, saturated bucket
        let flows: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Emit { flow } => flow,
                other => panic!("unexpected {other:?}"),
            })
        })
        .collect();
        assert_eq!(flows, vec![0, 1, 2, 4, 3]);
    }

    /// The campus-lookahead overflow property test: schedules are driven
    /// far past the 256-slot window — multi-lap gaps, repeated far-future
    /// collision times so equal-time ties straddle the overflow/wheel
    /// boundary, pushes below an already-advanced cursor, interleaved
    /// peeks (which advance the cursor), and bucket-saturating times —
    /// and the wheel must pop the exact `(time, FIFO)` sequence of the
    /// heap reference throughout.
    #[test]
    fn overflow_past_window_matches_heap_reference() {
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(0x0F10_0000 + seed);
            let mut wheel = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            let mut now = 0.0f64;
            let mut next_id = 0u32;
            // Shared far-future collision instants: some pushes reach them
            // through the overflow heap, later pushes (after the cursor
            // advanced) land directly in the wheel at the same time.
            let marks: [f64; 6] = [97.3, 194.6, 291.9, 389.2, 486.5, 583.8];
            for step in 0..600 {
                let burst = 1 + (rng.next_u64() % 3) as usize;
                for _ in 0..burst {
                    let at = match rng.next_u64() % 12 {
                        // Equal-time burst at the current instant (its
                        // natural bucket may be behind the cursor).
                        0 => now,
                        // Far-future equal-time ties.
                        1 | 2 => marks[(rng.next_u64() % 6) as usize],
                        // One to two laps beyond the wheel horizon.
                        3 => now + 0.41 + (rng.next_u64() % 100) as f64 * 0.4,
                        // Many laps out: up to 600 s.
                        4 => now + (rng.next_u64() % 60_000) as f64 * 0.01,
                        // Bucket-saturating far future.
                        5 => 4.0e17 + (rng.next_u64() % 3) as f64 * 1.0e17,
                        // In-horizon frame/ACK-scale delays.
                        _ => now + (rng.next_u64() % 4000) as f64 * 1e-4,
                    };
                    let at = at.max(now);
                    wheel.push(at, Event::Emit { flow: next_id });
                    heap.push(at, Event::Emit { flow: next_id });
                    next_id += 1;
                }
                if step % 5 == 0 {
                    // Peeks advance the wheel cursor without consuming.
                    assert_eq!(wheel.peek_time(), heap.peek_time(), "seed {seed} peek");
                }
                for _ in 0..rng.next_u64() % 3 {
                    match (wheel.pop(), heap.pop()) {
                        (Some((wa, we)), Some((ha, he))) => {
                            assert_eq!(wa.to_bits(), ha.to_bits(), "seed {seed}: time mismatch");
                            assert_eq!(we, he, "seed {seed}: event mismatch at t={wa}");
                            now = wa;
                        }
                        (None, None) => {}
                        (w, h) => panic!("seed {seed}: emptiness mismatch {w:?} vs {h:?}"),
                    }
                }
            }
            loop {
                match (wheel.pop(), heap.pop()) {
                    (Some((wa, we)), Some((ha, he))) => {
                        assert_eq!(wa.to_bits(), ha.to_bits(), "seed {seed}: drain time");
                        assert_eq!(we, he, "seed {seed}: drain event");
                    }
                    (None, None) => break,
                    (w, h) => panic!("seed {seed}: drain emptiness mismatch {w:?} vs {h:?}"),
                }
            }
        }
    }

    /// The satellite property test: wheel and heap pop identical
    /// `(time, event)` sequences over randomized seeded schedules with
    /// equal-time bursts, in-horizon delays, and far-future overflow,
    /// under interleaved push/pop. Events are pairwise distinct so any
    /// tie-break divergence is observable.
    #[test]
    fn wheel_matches_heap_on_random_schedules() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xEC0_0000 + seed);
            let mut wheel = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            let mut now = 0.0f64;
            let mut next_id = 0u32;
            for _ in 0..400 {
                let burst = 1 + (rng.next_u64() % 4) as usize;
                for _ in 0..burst {
                    let at = match rng.next_u64() % 10 {
                        // Equal-time burst at the current instant.
                        0 | 1 => now,
                        // Far future: beyond the 400 ms wheel horizon.
                        2 => now + 0.5 + (rng.next_u64() % 1000) as f64 * 0.01,
                        // In-horizon frame/ACK-scale delays.
                        _ => now + (rng.next_u64() % 4000) as f64 * 1e-4,
                    };
                    wheel.push(at, Event::Emit { flow: next_id });
                    heap.push(at, Event::Emit { flow: next_id });
                    next_id += 1;
                }
                let pops = rng.next_u64() % 3;
                for _ in 0..pops {
                    let w = wheel.pop();
                    let h = heap.pop();
                    match (w, h) {
                        (Some((wa, we)), Some((ha, he))) => {
                            assert_eq!(wa.to_bits(), ha.to_bits(), "seed {seed}: time mismatch");
                            assert_eq!(we, he, "seed {seed}: event mismatch at t={wa}");
                            now = wa;
                        }
                        (None, None) => {}
                        (w, h) => panic!("seed {seed}: emptiness mismatch {w:?} vs {h:?}"),
                    }
                }
            }
            // Drain both completely.
            loop {
                match (wheel.pop(), heap.pop()) {
                    (Some((wa, we)), Some((ha, he))) => {
                        assert_eq!(wa.to_bits(), ha.to_bits(), "seed {seed}: drain time mismatch");
                        assert_eq!(we, he, "seed {seed}: drain event mismatch");
                    }
                    (None, None) => break,
                    (w, h) => panic!("seed {seed}: drain emptiness mismatch {w:?} vs {h:?}"),
                }
            }
        }
    }
}
