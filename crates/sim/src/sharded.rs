//! The sharded simulator: interference-domain parallelism with
//! byte-identical results (DESIGN.md §13).
//!
//! [`ShardedSimulation`] partitions the network's links into *atoms* —
//! closed groups under the coupling rules R1–R4 of
//! [`empower_model::shard`] — packs atoms onto up to
//! `EMPOWER_SIM_SHARDS` shards, and runs one [`Simulation`] per shard on
//! the persistent worker pool (`crate::pool`, knob `EMPOWER_SIM_POOL`).
//! Because no flow, interference domain, broadcast group or fault ever
//! crosses an atom boundary, the conservative lookahead is *degenerate*:
//! shards never exchange events at all, and each shard's execution of its
//! own flows is bit-identical to the single-threaded engine's.
//!
//! Three mechanisms make the merge exact rather than approximate:
//!
//! * **Deferred command-log replay.** The public API records operations
//!   (`add_flow`, fault schedules, `replace_routes`, `run_until`) into an
//!   op log; nothing executes until the first observer (`report`,
//!   `telemetry`, `take_trace`, `perf_stats`). Only then is the full
//!   coupling closure known — including replacement routes scheduled for
//!   later — so the partition can be computed once, correctly.
//! * **Shard-local views.** Every worker runs on a
//!   [`ShardView`](empower_model::ShardView): the subgraph of its own
//!   *active* atoms (those hosting an owned flow or scheduled fault),
//!   with dense local ids. No full-network clone, no ghost flows, and
//!   control-plane ticks iterate local links only. The local→global
//!   remap is monotone, per-link RNG streams are seeded by *global* link
//!   id, and flows keep their *global* ids for RNG streams, counter
//!   names and trace lines — so every byte a worker produces already
//!   speaks global ids, and the merge never has to translate.
//! * **Index-ordered, canonical merges.** Worker results are merged in
//!   shard-index order (no completion-order nondeterminism): per-flow
//!   stats are taken from each flow's owning shard in ascending global
//!   flow order; counters merge by fixed per-name rules (see
//!   [`ShardedSimulation::merge_counters`]); traces merge in canonical
//!   `(time, rendered line)` order — rendered into one shared buffer,
//!   not one `String` per event — and are truncated to the configured
//!   cap only *after* the sort, so the bytes cannot depend on the shard
//!   count.
//!
//! The result: `SimReport`s, telemetry manifests and canonical traces
//! are byte-identical across `--shards` counts, and equal to the
//! single-threaded engine's up to canonical trace ordering — enforced by
//! `crates/sim/tests/shard_equivalence.rs` over the full corpus.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

use empower_datapath::{IfaceId, IfaceRegistry, SourceRoute};
use empower_model::shard::{extract_view, plan_shards, CouplingSpec, ShardPlan, ShardView};
use empower_model::{InterferenceMap, LinkId, Network, NodeId, Path};
use empower_telemetry::{CounterSnapshot, CounterType, Telemetry};

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::flow::FlowSpecSim;
use crate::perf::SimPerfStats;
use crate::pool::{run_shard_batch, ShardArena};
use crate::stats::{FlowStats, SimReport};
use crate::trace::Trace;

/// One recorded API call, replayed per shard at execution time.
enum Op {
    AddFlow(FlowSpecSim),
    LinkChange { at: f64, link: LinkId, capacity_mbps: f64 },
    NodeChange { at: f64, node: NodeId, up: bool },
    ReplaceRoutes { flow: usize, routes: Vec<Path> },
    RunUntil { until: f64 },
}

/// One op rewritten for a specific worker. Flow references carry their
/// *global* ids so the worker can seed RNG streams and name counters
/// exactly as the single-threaded engine does; link/node ids start
/// global and are localized against the worker's view before replay.
enum WorkerOp {
    AddFlow { gid: usize, spec: FlowSpecSim },
    LinkChange { at: f64, link: LinkId, capacity_mbps: f64 },
    NodeChange { at: f64, node: NodeId, up: bool },
    ReplaceRoutes { gid: usize, routes: Vec<Path> },
    RunUntil { until: f64 },
}

/// What one shard worker sends back for merging.
type WorkerOut = (Vec<FlowStats>, CounterSnapshot, Option<Trace>, SimPerfStats);

/// Merged results of one execution of the op log.
struct Exec {
    /// Number of ops reflected in this execution (re-executed when the
    /// log grows past it).
    ops_done: usize,
    flows: Vec<FlowStats>,
    trace: Option<Trace>,
    perf: SimPerfStats,
    /// `events_dispatched` per worker, shard-index order — the
    /// denominator of the counter-based speedup statistic.
    shard_events: Vec<u64>,
    shards_used: usize,
}

/// Reads the shard count from `EMPOWER_SIM_SHARDS` (default 4).
fn env_shards() -> u32 {
    std::env::var("EMPOWER_SIM_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// The sharded engine. API-compatible with [`Simulation`] (both implement
/// the corpus `SimEngine` trait); see the module docs for semantics.
pub struct ShardedSimulation {
    /// The pristine pre-run network. [`ShardedSimulation::network`]
    /// returns this — mid-run capacity mutations live inside the worker
    /// engines (callers needing mutated state inspect reports instead).
    /// `Arc`: shared read-only with pool workers, which extract their
    /// views from it without cloning the graph.
    net: Arc<Network>,
    imap: Arc<InterferenceMap>,
    reg: IfaceRegistry,
    cfg: SimConfig,
    shards: u32,
    ops: Vec<Op>,
    flow_count: usize,
    tele: Telemetry,
    /// `Some(cap)` once a trace sink is attached (the sink itself is
    /// re-created canonically at merge time; workers record unbounded).
    trace_cap: Option<Option<usize>>,
    exec: RefCell<Option<Exec>>,
}

impl ShardedSimulation {
    /// Creates a sharded simulation with the shard count taken from
    /// `EMPOWER_SIM_SHARDS` (default 4).
    pub fn new(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self {
        Self::with_shards(net, imap, cfg, env_shards())
    }

    /// Creates a sharded simulation with an explicit shard count.
    pub fn with_shards(net: Network, imap: InterferenceMap, cfg: SimConfig, shards: u32) -> Self {
        let reg = IfaceRegistry::for_network(&net);
        ShardedSimulation {
            reg,
            net: Arc::new(net),
            imap: Arc::new(imap),
            cfg,
            shards: shards.max(1),
            ops: Vec::new(),
            flow_count: 0,
            tele: Telemetry::disabled(),
            trace_cap: None,
            exec: RefCell::new(None),
        }
    }

    /// Attaches a packet-level trace sink. Only the sink's cap is used:
    /// workers record unbounded and the merged trace is truncated to the
    /// cap *after* the canonical sort (truncating earlier would make the
    /// kept prefix depend on the shard count).
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace_cap = Some(trace.cap());
    }

    /// Attaches a telemetry registry; merged counters are written into it
    /// at execution time.
    pub fn attach_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// The attached telemetry handle, with merged counters.
    pub fn telemetry(&self) -> &Telemetry {
        self.ensure_executed();
        &self.tele
    }

    /// Detaches and returns the canonically merged trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.ensure_executed();
        self.exec.borrow_mut().as_mut().and_then(|e| e.trace.take())
    }

    /// Records a flow; returns its index. Validation and resolution
    /// happen at execution time, exactly as the single-threaded engine
    /// would perform them.
    pub fn add_flow(&mut self, spec: FlowSpecSim) -> usize {
        assert!(!spec.routes.is_empty(), "flow has no routes");
        let idx = self.flow_count;
        self.flow_count += 1;
        self.ops.push(Op::AddFlow(spec));
        idx
    }

    /// Schedules a capacity change (0 = link death).
    pub fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64) {
        self.ops.push(Op::LinkChange { at, link, capacity_mbps });
    }

    /// Schedules a node crash or recovery.
    pub fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool) {
        self.ops.push(Op::NodeChange { at, node, up });
    }

    /// Replaces a flow's routes mid-run. Returns the number of routes
    /// that resolve — route resolution depends only on static link ids
    /// and the interface registry (never on mid-run capacities), so the
    /// eager count here equals what the owning shard installs at replay.
    pub fn replace_routes(&mut self, flow: usize, routes: Vec<Path>) -> usize {
        assert!(flow < self.flow_count, "no such flow");
        assert!(!routes.is_empty(), "a flow needs at least one route");
        let installed = routes.iter().filter(|p| self.resolves(p)).count();
        self.ops.push(Op::ReplaceRoutes { flow, routes });
        installed
    }

    /// Advances simulated time (deferred until the next observer).
    pub fn run_until(&mut self, until: f64) {
        self.ops.push(Op::RunUntil { until });
    }

    /// The merged report as of the op log's horizon.
    pub fn report(&self, duration: f64) -> SimReport {
        self.ensure_executed();
        let exec = self.exec.borrow();
        let flows = match exec.as_ref() {
            Some(e) => e.flows.clone(),
            None => Vec::new(),
        };
        SimReport { flows, duration }
    }

    /// The **pristine pre-run** network (see the field docs).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Work counters summed over all shards.
    pub fn perf_stats(&self) -> SimPerfStats {
        self.ensure_executed();
        self.exec.borrow().as_ref().map(|e| e.perf).unwrap_or_default()
    }

    /// `events_dispatched` per worker in shard-index order. The maximum
    /// entry is the critical-path work of the parallel run;
    /// `single_threaded_events / max` is the counter-based speedup the
    /// scale benchmark gates on.
    pub fn shard_events_dispatched(&self) -> Vec<u64> {
        self.ensure_executed();
        self.exec.borrow().as_ref().map(|e| e.shard_events.clone()).unwrap_or_default()
    }

    /// Number of worker engines the last execution actually ran (shards
    /// owning neither flows nor faults are skipped).
    pub fn shards_used(&self) -> usize {
        self.ensure_executed();
        self.exec.borrow().as_ref().map(|e| e.shards_used).unwrap_or(0)
    }

    /// The shard plan for the current op log (diagnostics / tests).
    pub fn plan(&self) -> ShardPlan {
        let (spec, _) = self.coupling();
        plan_shards(&self.net, &self.imap, &spec, self.shards)
    }

    /// Mirror of the engine's route resolution, which is static: link ids
    /// never disappear (failures zero capacities) and the interface
    /// registry is fixed at construction.
    fn resolves(&self, p: &Path) -> bool {
        let mut hops: Vec<IfaceId> = Vec::with_capacity(p.links().len());
        for &l in p.links() {
            let Some(link) = self.net.try_link(l) else { return false };
            let Some(id) = self.reg.id_of(link.to, link.medium) else { return false };
            hops.push(id);
        }
        SourceRoute::new(&hops).is_ok()
    }

    /// Builds the coupling spec from the op log: every flow's link
    /// closure (all routes, all scheduled replacement routes, and for TCP
    /// flows the receiver's adjacent links — the §6.4 tcp-margin flag
    /// influences every link whose contention domain contains the
    /// receiver, and R1 pulls those in through the adjacent links), plus
    /// the fault-node list. Also returns the op-aligned fault links.
    fn coupling(&self) -> (CouplingSpec, Vec<Vec<LinkId>>) {
        let mut flow_links: Vec<Vec<LinkId>> = Vec::with_capacity(self.flow_count);
        let mut fault_nodes: Vec<NodeId> = Vec::new();
        for op in &self.ops {
            match op {
                Op::AddFlow(spec) => {
                    let mut links: Vec<LinkId> =
                        spec.routes.iter().flat_map(|p| p.links().iter().copied()).collect();
                    if spec.pattern.is_tcp() {
                        links.extend(self.net.out_links(spec.dst).map(|l| l.id));
                        links.extend(self.net.in_links(spec.dst).map(|l| l.id));
                    }
                    flow_links.push(links);
                }
                Op::ReplaceRoutes { flow, routes } => {
                    flow_links[*flow].extend(routes.iter().flat_map(|p| p.links().iter().copied()));
                }
                Op::NodeChange { node, .. } => fault_nodes.push(*node),
                _ => {}
            }
        }
        let per_flow = flow_links.clone();
        (CouplingSpec { flow_links, fault_nodes }, per_flow)
    }

    /// Runs the op log if the cached execution is stale.
    fn ensure_executed(&self) {
        let done = self.exec.borrow().as_ref().map(|e| e.ops_done);
        if done == Some(self.ops.len()) {
            return;
        }
        let exec = self.execute();
        *self.exec.borrow_mut() = Some(exec);
    }

    fn execute(&self) -> Exec {
        let (cspec, per_flow_links) = self.coupling();
        let plan = plan_shards(&self.net, &self.imap, &cspec, self.shards);

        // Owners: a flow belongs to its closure's (single) atom; a fault
        // op to its link's / node's atom. R4 makes all links adjacent to
        // a faulted node one atom, so "first adjacent link" is canonical.
        let flow_owner: Vec<u32> =
            per_flow_links.iter().map(|links| plan.shard_of_link(links[0])).collect();
        let mut next_flow = 0usize;
        let op_owner: Vec<u32> = self
            .ops
            .iter()
            .map(|op| match op {
                Op::AddFlow(_) => {
                    let o = flow_owner[next_flow];
                    next_flow += 1;
                    o
                }
                Op::LinkChange { link, .. } => plan.shard_of_link(*link),
                Op::NodeChange { node, .. } => self
                    .net
                    .out_links(*node)
                    .chain(self.net.in_links(*node))
                    .map(|l| plan.shard_of_link(l.id))
                    .next()
                    .unwrap_or(0),
                Op::ReplaceRoutes { flow, .. } => flow_owner[*flow],
                Op::RunUntil { .. } => 0,
            })
            .collect();

        // Shards with neither flows nor fault events would only replay
        // idle control ticks; skip them (global per-tick counters merge
        // by max, so the remaining shards carry them).
        let mut used: BTreeSet<u32> = flow_owner.iter().copied().collect();
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, Op::LinkChange { .. } | Op::NodeChange { .. }) {
                used.insert(op_owner[i]);
            }
        }
        if used.is_empty() {
            used.insert(0);
        }
        let used: Vec<u32> = used.into_iter().collect();

        // Active atoms: only atoms hosting an owned flow or a scheduled
        // op do any observable work — zero demand, zero violations, zero
        // traffic everywhere else — so views exclude the rest entirely.
        // This is where the wall-clock win comes from: control ticks and
        // MAC domain scans run over each shard's local links only.
        let mut active_atom = vec![false; plan.atom_count as usize];
        for links in &per_flow_links {
            active_atom[plan.atom_of_link[links[0].index()] as usize] = true;
        }
        for op in &self.ops {
            match op {
                Op::LinkChange { link, .. } => {
                    active_atom[plan.atom_of_link[link.index()] as usize] = true;
                }
                Op::NodeChange { node, .. } => {
                    for l in self.net.out_links(*node).chain(self.net.in_links(*node)) {
                        active_atom[plan.atom_of_link[l.id.index()] as usize] = true;
                    }
                }
                _ => {}
            }
        }

        // Rewrite the op log into one replay list per used shard: every
        // shard sees its own ops (with global flow ids attached) plus all
        // time advances, in original log order.
        let mut worker_ops: Vec<Vec<WorkerOp>> = used.iter().map(|_| Vec::new()).collect();
        let pos_of = |s: u32| used.iter().position(|&u| u == s);
        let mut next_flow = 0usize;
        for (i, op) in self.ops.iter().enumerate() {
            let owned = |worker_ops: &mut Vec<Vec<WorkerOp>>, wop: WorkerOp| {
                let Some(p) = pos_of(op_owner[i]) else {
                    unreachable!("owner of an op is always a used shard")
                };
                worker_ops[p].push(wop);
            };
            match op {
                Op::AddFlow(spec) => {
                    let gid = next_flow;
                    next_flow += 1;
                    owned(&mut worker_ops, WorkerOp::AddFlow { gid, spec: spec.clone() });
                }
                Op::LinkChange { at, link, capacity_mbps } => owned(
                    &mut worker_ops,
                    WorkerOp::LinkChange { at: *at, link: *link, capacity_mbps: *capacity_mbps },
                ),
                Op::NodeChange { at, node, up } => {
                    owned(&mut worker_ops, WorkerOp::NodeChange { at: *at, node: *node, up: *up })
                }
                Op::ReplaceRoutes { flow, routes } => owned(
                    &mut worker_ops,
                    WorkerOp::ReplaceRoutes { gid: *flow, routes: routes.clone() },
                ),
                Op::RunUntil { until } => {
                    for list in worker_ops.iter_mut() {
                        list.push(WorkerOp::RunUntil { until: *until });
                    }
                }
            }
        }

        let instrument = self.tele.is_enabled();
        let trace_on = self.trace_cap.is_some();
        let plan = Arc::new(plan);
        let active_atom = Arc::new(active_atom);

        let mut jobs = Vec::with_capacity(used.len());
        for (w, &s) in used.iter().enumerate() {
            let net = Arc::clone(&self.net);
            let imap = Arc::clone(&self.imap);
            let plan = Arc::clone(&plan);
            let active_atom = Arc::clone(&active_atom);
            let cfg = self.cfg.clone();
            let ops = std::mem::take(&mut worker_ops[w]);
            jobs.push(move |arena: &mut ShardArena| {
                run_worker(
                    &net,
                    &imap,
                    &plan,
                    s,
                    &active_atom,
                    cfg,
                    ops,
                    instrument,
                    trace_on,
                    arena,
                )
            });
        }
        let results: Vec<WorkerOut> = run_shard_batch(jobs);

        // Per-flow stats: each worker reports exactly its own flows in
        // ascending global order, so a per-shard cursor walk reassembles
        // the global order without any placeholder entries.
        let mut cursor = vec![0usize; results.len()];
        let mut flows = Vec::with_capacity(self.flow_count);
        for owner in &flow_owner {
            let Some(pos) = used.iter().position(|u| u == owner) else {
                unreachable!("every flow owner is a used shard")
            };
            let c = cursor[pos];
            cursor[pos] += 1;
            flows.push(results[pos].0[c].clone());
        }

        if instrument {
            self.merge_counters(&results);
        }

        let mut trace_saved = 0u64;
        let trace = self.trace_cap.map(|cap| {
            // Canonical order: (time, rendered line). Equal-time events
            // from independent atoms have no defined order in a single
            // event loop; the canonical sort makes the merged bytes a
            // function of the event *multiset* only. Every line is
            // rendered into ONE shared buffer and keyed by its byte
            // range — the old per-event `to_string()` was the profile's
            // top allocation site at campus scale.
            let mut buf = String::new();
            let mut keyed: Vec<(u64, u32, u32, u32, u32)> = Vec::new();
            for (r, (_, _, tr, _)) in results.iter().enumerate() {
                let Some(tr) = tr else { continue };
                for (i, e) in tr.events().iter().enumerate() {
                    let start = buf.len() as u32;
                    let _ = write!(buf, "{}", e.to_json());
                    keyed.push((e.time().to_bits(), start, buf.len() as u32, r as u32, i as u32));
                }
            }
            trace_saved = keyed.len() as u64;
            keyed.sort_by(|a, b| {
                (a.0, &buf[a.1 as usize..a.2 as usize])
                    .cmp(&(b.0, &buf[b.1 as usize..b.2 as usize]))
            });
            let mut out = match cap {
                Some(c) => Trace::bounded(c),
                None => Trace::new(),
            };
            for &(_, _, _, r, i) in &keyed {
                let Some(tr) = &results[r as usize].2 else {
                    unreachable!("keyed events only come from present traces")
                };
                out.push(tr.events()[i as usize].clone());
            }
            out
        });

        let mut perf = SimPerfStats::default();
        let mut shard_events = Vec::with_capacity(results.len());
        for (_, _, _, p) in &results {
            perf.events_dispatched += p.events_dispatched;
            perf.domain_probes += p.domain_probes;
            perf.hot_allocs += p.hot_allocs;
            perf.slab_hits += p.slab_hits;
            perf.slab_grows += p.slab_grows;
            perf.bytes_not_allocated += p.bytes_not_allocated;
            shard_events.push(p.events_dispatched);
        }
        perf.trace_merge_saved_allocs = trace_saved;

        Exec {
            ops_done: self.ops.len(),
            flows,
            trace,
            perf,
            shard_events,
            shards_used: results.len(),
        }
    }

    /// Folds the per-shard counter snapshots into the attached registry.
    ///
    /// Workers run on shard-local views, so per-name rules (DESIGN.md
    /// §13):
    /// * `ctrl/ticks` — **max**: every worker ticks the full horizon, so
    ///   the values are equal and must not multiply.
    /// * `cc/price_updates` — **reconstructed** as merged ticks × the
    ///   *global* link count: each worker advances it by its local link
    ///   count per tick, and links outside every view still carry a
    ///   (trivially converged) price in the serial semantics.
    /// * `mac/penalty_airtime_us` — **sum**: a gauge by flavor but
    ///   accumulated (`add`), and only owning shards contribute.
    /// * other gauges (`link/<g>/queue_hwm`) — **max**, with gauges for
    ///   links outside every view **zero-filled** so the manifest's name
    ///   set matches the single-threaded engine's.
    /// * everything else — **sum**: traffic and flow counters are only
    ///   advanced by the owning shard, so sums reproduce serial totals.
    ///
    /// Values are written with `set`, making re-merges after op-log
    /// growth idempotent.
    fn merge_counters(&self, results: &[WorkerOut]) {
        let mut merged: BTreeMap<String, (CounterType, u64)> = BTreeMap::new();
        for (_, snap, _, _) in results {
            for (name, flavor, value) in &snap.counters {
                let slot = merged.entry(name.clone()).or_insert((*flavor, 0));
                let take_max = name == "ctrl/ticks"
                    || (*flavor == CounterType::Gauge && name != "mac/penalty_airtime_us");
                if take_max {
                    slot.1 = slot.1.max(*value);
                } else {
                    slot.1 += *value;
                }
            }
        }
        let ticks = merged.get("ctrl/ticks").map(|&(_, v)| v).unwrap_or(0);
        if let Some(slot) = merged.get_mut("cc/price_updates") {
            slot.1 = ticks * self.net.link_count() as u64;
        }
        for g in 0..self.net.link_count() {
            merged.entry(format!("link/{g}/queue_hwm")).or_insert((CounterType::Gauge, 0));
        }
        for (name, (flavor, value)) in &merged {
            self.tele.counter(name.clone(), *flavor).set(*value);
        }
    }
}

/// One shard's run: extract the view, localize the replay list, drive a
/// [`Simulation`] over the subnetwork, and return globally-addressed
/// results. Runs on a pool worker thread; `arena` persists across runs.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    net: &Network,
    imap: &InterferenceMap,
    plan: &ShardPlan,
    shard: u32,
    active_atom: &[bool],
    cfg: SimConfig,
    ops: Vec<WorkerOp>,
    instrument: bool,
    trace_on: bool,
    arena: &mut ShardArena,
) -> WorkerOut {
    let view = extract_view(net, imap, plan, shard, active_atom, &mut arena.view_scratch);

    // Localize the whole replay list up front. Owned flows and faults
    // always fit the view by construction (their atoms are active and
    // packed here); the one legitimate miss is a NodeChange on a node
    // with no links in any active atom, which has no observable effect
    // and is skipped outright.
    let mut local: Vec<WorkerOp> = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            WorkerOp::AddFlow { gid, mut spec } => {
                let Some(src) = view.local_node(spec.src) else {
                    unreachable!("owned flow's source is outside its shard view")
                };
                let Some(dst) = view.local_node(spec.dst) else {
                    unreachable!("owned flow's destination is outside its shard view")
                };
                spec.src = src;
                spec.dst = dst;
                spec.routes = localize_routes(&view, &spec.routes);
                local.push(WorkerOp::AddFlow { gid, spec });
            }
            WorkerOp::LinkChange { at, link, capacity_mbps } => {
                let Some(l) = view.local_link(link) else {
                    unreachable!("owned link fault is outside its shard view")
                };
                local.push(WorkerOp::LinkChange { at, link: l, capacity_mbps });
            }
            WorkerOp::NodeChange { at, node, up } => {
                if let Some(n) = view.local_node(node) {
                    local.push(WorkerOp::NodeChange { at, node: n, up });
                }
            }
            WorkerOp::ReplaceRoutes { gid, routes } => {
                local
                    .push(WorkerOp::ReplaceRoutes { gid, routes: localize_routes(&view, &routes) });
            }
            WorkerOp::RunUntil { until } => local.push(WorkerOp::RunUntil { until }),
        }
    }

    let link_gids: Vec<u32> = view.link_to_global.iter().map(|l| l.0).collect();
    let ShardView { net: vnet, imap: vimap, .. } = view;
    let mut sim = Simulation::with_global_link_ids(vnet, vimap, cfg, link_gids);
    if instrument {
        sim.attach_telemetry(Telemetry::enabled());
    }
    if trace_on {
        sim.attach_trace(Trace::new());
    }

    // Owned flows arrive in ascending global-id order, so the local
    // index of gid `g` is its rank in this list.
    let mut owned_gids: Vec<usize> = Vec::new();
    for op in local {
        match op {
            WorkerOp::AddFlow { gid, spec } => {
                owned_gids.push(gid);
                sim.add_flow_global(spec, gid);
            }
            WorkerOp::LinkChange { at, link, capacity_mbps } => {
                sim.schedule_link_change(at, link, capacity_mbps);
            }
            WorkerOp::NodeChange { at, node, up } => sim.schedule_node_change(at, node, up),
            WorkerOp::ReplaceRoutes { gid, routes } => {
                let Ok(f) = owned_gids.binary_search(&gid) else {
                    unreachable!("replace_routes routed to a shard that does not own the flow")
                };
                sim.replace_routes(f, routes);
            }
            WorkerOp::RunUntil { until } => sim.run_until(until),
        }
    }

    let flows = sim.report(0.0).flows;
    let snap = sim.telemetry().snapshot();
    let trace = sim.take_trace();
    let perf = sim.perf_stats();
    (flows, snap, trace, perf)
}

/// Rewrites a set of global-id routes into view-local ids. Every route
/// of an owned flow — including scheduled replacements — is inside the
/// flow's coupling atom, hence inside the view.
fn localize_routes(view: &ShardView, routes: &[Path]) -> Vec<Path> {
    routes
        .iter()
        .map(|p| {
            let Some(local) = view.localize_path(p) else {
                unreachable!("owned flow's route leaves its shard view")
            };
            local
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::rng::{SeedableRng, StdRng};
    use empower_model::topology::campus::{campus, CampusConfig};
    use empower_model::{CarrierSense, InterferenceModel};
    use empower_telemetry::Manifest;

    fn campus_setup() -> (Network, InterferenceMap, Vec<FlowSpecSim>) {
        let mut rng = StdRng::seed_from_u64(5);
        let t = campus(&mut rng, &CampusConfig::new(2, 2, 4));
        let imap = CarrierSense::default().build_map(&t.net);
        // One hybrid multipath download per floor: router → first client
        // over every direct link between them.
        let mut specs = Vec::new();
        for fl in &t.floors {
            let c = fl.clients[0];
            let routes: Vec<Path> = t
                .net
                .out_links(fl.router)
                .filter(|l| l.to == c)
                .map(|l| Path::new(&t.net, vec![l.id]).unwrap())
                .collect();
            specs.push(FlowSpecSim::saturated(fl.router, c, routes, 5.0));
        }
        (t.net, imap, specs)
    }

    fn run_sharded(shards: u32) -> (String, String, String) {
        let (net, imap, specs) = campus_setup();
        let mut sim = ShardedSimulation::with_shards(net, imap, SimConfig::default(), shards);
        sim.attach_telemetry(Telemetry::enabled());
        sim.attach_trace(Trace::bounded(50_000));
        for s in specs {
            sim.add_flow(s);
        }
        sim.run_until(5.0);
        let report = format!("{:?}", sim.report(5.0));
        let mut m = Manifest::new("shard_test");
        m.attach_counters(sim.telemetry());
        let trace = sim.take_trace().map(|t| t.to_jsonl()).unwrap_or_default();
        (report, trace, m.render())
    }

    #[test]
    fn byte_identical_across_shard_counts() {
        let one = run_sharded(1);
        for shards in [2, 4, 8] {
            assert_eq!(one, run_sharded(shards), "shards={shards} diverged");
        }
    }

    #[test]
    fn matches_single_threaded_engine() {
        let (net, imap, specs) = campus_setup();
        let mut single = Simulation::new(net.clone(), imap.clone(), SimConfig::default());
        single.attach_telemetry(Telemetry::enabled());
        single.attach_trace(Trace::new());
        for s in &specs {
            single.add_flow(s.clone());
        }
        single.run_until(5.0);
        let mut m1 = Manifest::new("shard_test");
        m1.attach_counters(single.telemetry());

        let mut sharded = ShardedSimulation::with_shards(net, imap, SimConfig::default(), 4);
        sharded.attach_telemetry(Telemetry::enabled());
        sharded.attach_trace(Trace::new());
        for s in specs {
            sharded.add_flow(s);
        }
        sharded.run_until(5.0);
        let mut m2 = Manifest::new("shard_test");
        m2.attach_counters(sharded.telemetry());

        assert_eq!(format!("{:?}", single.report(5.0)), format!("{:?}", sharded.report(5.0)));
        assert_eq!(m1.render(), m2.render());
        let t1 = single.take_trace().map(|t| t.canonical_jsonl()).unwrap_or_default();
        let t2 = sharded.take_trace().map(|t| t.canonical_jsonl()).unwrap_or_default();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2);
    }

    #[test]
    fn uses_multiple_shards_and_reports_per_shard_work() {
        let (net, imap, specs) = campus_setup();
        let mut sim = ShardedSimulation::with_shards(net, imap, SimConfig::default(), 4);
        for s in specs {
            sim.add_flow(s);
        }
        sim.run_until(2.0);
        let _ = sim.report(2.0);
        assert!(sim.shards_used() >= 2, "campus flows should spread over shards");
        let per = sim.shard_events_dispatched();
        assert_eq!(per.len(), sim.shards_used());
        let total: u64 = per.iter().sum();
        assert_eq!(total, sim.perf_stats().events_dispatched);
    }

    /// The view-based workers do strictly less total work than one
    /// engine over the full network — the wall-clock side of the PR.
    /// With views, the whole 4-shard run dispatches barely more events
    /// than the serial engine (the extra is one control-tick chain per
    /// additional worker), where the old full-clone workers each
    /// re-dispatched the full network's control plane.
    #[test]
    fn view_workers_do_not_multiply_control_work() {
        let (net, imap, specs) = campus_setup();
        let mut single = Simulation::new(net.clone(), imap.clone(), SimConfig::default());
        for s in &specs {
            single.add_flow(s.clone());
        }
        single.run_until(5.0);
        let serial = single.perf_stats().events_dispatched;

        let (net, imap, specs) = campus_setup();
        let mut sim = ShardedSimulation::with_shards(net, imap, SimConfig::default(), 4);
        for s in specs {
            sim.add_flow(s);
        }
        sim.run_until(5.0);
        let _ = sim.report(5.0);
        let sharded = sim.perf_stats().events_dispatched;
        let workers = sim.shards_used() as u64;
        // Each extra worker contributes exactly one extra control-tick
        // chain (one event per 100 ms slot over 5 s = 51 ticks ≤ 60).
        assert!(workers >= 2);
        assert!(
            sharded <= serial + (workers - 1) * 60,
            "sharded dispatched {sharded} events vs serial {serial} (+{workers} workers)"
        );
    }

    /// `ShardedSimulation::new` honors `EMPOWER_SIM_SHARDS` — and the
    /// output stays byte-identical to an explicit shard count, because
    /// the knob may only change *how* the work is split, never the
    /// result. No other test in this binary constructs via `new`, so
    /// the env write cannot race a concurrent read.
    #[test]
    fn env_knob_sets_default_shard_count() {
        let (net, imap, specs) = campus_setup();
        std::env::set_var("EMPOWER_SIM_SHARDS", "2");
        let mut sim = ShardedSimulation::new(net, imap, SimConfig::default());
        std::env::remove_var("EMPOWER_SIM_SHARDS");
        for s in specs {
            sim.add_flow(s);
        }
        sim.run_until(5.0);
        assert_eq!(format!("{:?}", sim.report(5.0)), run_sharded(2).0);
        assert_eq!(sim.shards_used(), 2, "EMPOWER_SIM_SHARDS=2 should pin two shards");
    }

    /// `EMPOWER_SIM_POOL=0` runs shard jobs inline on the caller thread;
    /// the bytes must match the pooled default exactly (a concurrent
    /// test observing the knob mid-write would only switch *mode*, never
    /// output, so the env race here is benign).
    #[test]
    fn pool_off_matches_pooled() {
        let pooled = run_sharded(4);
        std::env::set_var("EMPOWER_SIM_POOL", "0");
        let inline = run_sharded(4);
        std::env::remove_var("EMPOWER_SIM_POOL");
        assert_eq!(pooled, inline);
    }

    #[test]
    fn replace_routes_counts_statically() {
        let (net, imap, specs) = campus_setup();
        let mut sim = ShardedSimulation::with_shards(net.clone(), imap, SimConfig::default(), 2);
        let f = sim.add_flow(specs[0].clone());
        let routes = specs[0].routes.clone();
        let n = routes.len();
        sim.run_until(1.0);
        assert_eq!(sim.replace_routes(f, routes), n);
        sim.run_until(2.0);
        let report = sim.report(2.0);
        assert_eq!(report.flows.len(), specs.len().min(1));
    }
}
