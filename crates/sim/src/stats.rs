//! Per-flow measurement collection.

/// Statistics for one flow.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Application bits delivered in order at the destination.
    pub delivered_bits: u64,
    /// Frames handed to the MAC by the source.
    pub sent_frames: u64,
    /// Frames dropped at the source by token-bucket admission.
    pub dropped_at_source: u64,
    /// Frames dropped in the network (queue overflow or dead next hop).
    pub dropped_in_network: u64,
    /// Sequence numbers the reorder buffer declared lost.
    pub declared_lost: u64,
    /// Delivered throughput per 1-second bucket, Mbps.
    pub throughput_series: Vec<f64>,
    /// Injected rate per route, sampled once per second, Mbps
    /// (`rate_series[route][second]`).
    pub rate_series: Vec<Vec<f64>>,
    /// Completion times of finished file downloads, seconds (absolute).
    pub completions: Vec<f64>,
    /// When the flow started generating traffic.
    pub started_at: f64,
    /// When the flow stopped generating traffic (its scheduled stop, its
    /// final file completion or its TCP goal) — 0 while still active at the
    /// end of the run. The workload layer's goodput window.
    pub stopped_at: f64,
    /// Sum of end-to-end frame delays (source emission → in-order
    /// delivery), seconds.
    pub delay_sum_secs: f64,
    /// Number of delay samples.
    pub delay_samples: u64,
    /// Worst observed end-to-end frame delay, seconds.
    pub delay_max_secs: f64,
}

impl FlowStats {
    /// Mean delivered throughput over `[from, to)` seconds, Mbps.
    pub fn mean_throughput(&self, from: usize, to: usize) -> f64 {
        let hi = to.min(self.throughput_series.len());
        let lo = from.min(hi);
        if hi == lo {
            return 0.0;
        }
        self.throughput_series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }

    /// Standard deviation of per-second throughput over `[from, to)`.
    pub fn std_throughput(&self, from: usize, to: usize) -> f64 {
        let hi = to.min(self.throughput_series.len());
        let lo = from.min(hi);
        if hi <= lo + 1 {
            return 0.0;
        }
        let mean = self.mean_throughput(lo, hi);
        let var = self.throughput_series[lo..hi].iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (hi - lo) as f64;
        var.sqrt()
    }

    /// Download duration of the `i`-th completed file, seconds (relative to
    /// flow/file start bookkeeping done by the engine).
    pub fn completion_count(&self) -> usize {
        self.completions.len()
    }

    /// Mean end-to-end frame delay, seconds (0 with no samples).
    pub fn mean_delay_secs(&self) -> f64 {
        if self.delay_samples == 0 {
            0.0
        } else {
            self.delay_sum_secs / self.delay_samples as f64
        }
    }
}

/// The simulator's final report.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub flows: Vec<FlowStats>,
    /// Simulated duration, seconds.
    pub duration: f64,
}

impl SimReport {
    /// Final throughput of a flow: mean over the last `window` seconds,
    /// matching the paper's "averaged over 10 seconds".
    pub fn final_throughput(&self, flow: usize, window: usize) -> f64 {
        let n = self.flows[flow].throughput_series.len();
        self.flows[flow].mean_throughput(n.saturating_sub(window), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_over_windows() {
        let s = FlowStats { throughput_series: vec![10.0, 10.0, 20.0, 20.0], ..Default::default() };
        assert!((s.mean_throughput(0, 4) - 15.0).abs() < 1e-12);
        assert!((s.mean_throughput(2, 4) - 20.0).abs() < 1e-12);
        assert!((s.std_throughput(0, 4) - 5.0).abs() < 1e-12);
        assert_eq!(s.std_throughput(0, 1), 0.0);
    }

    #[test]
    fn windows_clamp_to_series_length() {
        let s = FlowStats { throughput_series: vec![8.0, 8.0], ..Default::default() };
        assert!((s.mean_throughput(0, 100) - 8.0).abs() < 1e-12);
        assert_eq!(s.mean_throughput(5, 100), 0.0);
    }

    #[test]
    fn final_throughput_uses_tail_window() {
        let report = SimReport {
            flows: vec![FlowStats {
                throughput_series: vec![1.0, 1.0, 9.0, 9.0],
                ..Default::default()
            }],
            duration: 4.0,
        };
        assert!((report.final_throughput(0, 2) - 9.0).abs() < 1e-12);
    }
}
