//! Flow specifications: who talks to whom, over which routes, with what
//! traffic pattern.

use empower_model::{NodeId, Path};

/// The application driving a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Saturated UDP (the paper's iperf runs): the application always has
    /// data; the stack admits what congestion control allows.
    SaturatedUdp { start: f64, stop: f64 },
    /// A single file download of `size_bytes`, finished when the receiver
    /// has the full payload (lost frames are re-offered by the source, as
    /// an application-level repair loop would).
    FileDownload { start: f64, size_bytes: u64 },
    /// `count` sequential file downloads whose start times follow a Poisson
    /// process: each file starts `Exp(mean_gap_secs)` after the previous
    /// file *finished or started, whichever is later* (Table 1's Conc
    /// workload).
    PoissonFiles { start: f64, count: u32, size_bytes: u64, mean_gap_secs: f64 },
    /// A TCP bulk transfer (mini-TCP of [`crate::tcp`]); `size_bytes = 0`
    /// means run until `stop`.
    Tcp { start: f64, stop: f64, size_bytes: u64 },
}

impl TrafficPattern {
    /// When the flow first becomes active.
    pub fn start_time(&self) -> f64 {
        match *self {
            TrafficPattern::SaturatedUdp { start, .. }
            | TrafficPattern::FileDownload { start, .. }
            | TrafficPattern::PoissonFiles { start, .. }
            | TrafficPattern::Tcp { start, .. } => start,
        }
    }

    /// Explicit stop time, if the pattern has one.
    pub fn stop_time(&self) -> Option<f64> {
        match *self {
            TrafficPattern::SaturatedUdp { stop, .. } => Some(stop),
            TrafficPattern::Tcp { stop, .. } => Some(stop),
            _ => None,
        }
    }

    /// True for TCP flows.
    pub fn is_tcp(&self) -> bool {
        matches!(self, TrafficPattern::Tcp { .. })
    }
}

/// One flow handed to the simulator.
#[derive(Debug, Clone)]
pub struct FlowSpecSim {
    pub src: NodeId,
    pub dst: NodeId,
    /// Routes selected by the routing layer (1 = single path).
    pub routes: Vec<Path>,
    /// Run the congestion controller. When `false`, the flow injects
    /// open-loop at `open_loop_rates` (the w/o-CC schemes).
    pub use_cc: bool,
    /// Per-route open-loop rates, Mbps (ignored when `use_cc`); typically
    /// the routing layer's nominal `R(P)`.
    pub open_loop_rates: Vec<f64>,
    pub pattern: TrafficPattern,
    /// Destination-side delay equalization (§6.4; on for TCP).
    pub delay_equalization: bool,
}

impl FlowSpecSim {
    /// A congestion-controlled saturated-UDP flow (the common case).
    pub fn saturated(src: NodeId, dst: NodeId, routes: Vec<Path>, stop: f64) -> Self {
        FlowSpecSim {
            src,
            dst,
            routes,
            use_cc: true,
            open_loop_rates: Vec::new(),
            pattern: TrafficPattern::SaturatedUdp { start: 0.0, stop },
            delay_equalization: false,
        }
    }

    /// An **external** (non-EMPoWER) traffic source: a fixed-rate,
    /// open-loop, single-hop transmission on one link (§4.3). EMPoWER
    /// nodes overhear its airtime through their demand measurements and
    /// converge to the optimum of the residual region — without ever
    /// throttling the external node, which doesn't listen to prices.
    pub fn external(
        net: &empower_model::Network,
        link: empower_model::LinkId,
        rate_mbps: f64,
        start: f64,
        stop: f64,
    ) -> Self {
        let l = net.link(link);
        FlowSpecSim {
            src: l.from,
            dst: l.to,
            routes: vec![Path::from_links_unchecked(vec![link])],
            use_cc: false,
            open_loop_rates: vec![rate_mbps],
            pattern: TrafficPattern::SaturatedUdp { start, stop },
            delay_equalization: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_times() {
        let p = TrafficPattern::SaturatedUdp { start: 1.0, stop: 9.0 };
        assert_eq!(p.start_time(), 1.0);
        assert_eq!(p.stop_time(), Some(9.0));
        let f = TrafficPattern::FileDownload { start: 2.0, size_bytes: 100 };
        assert_eq!(f.start_time(), 2.0);
        assert_eq!(f.stop_time(), None);
        assert!(!f.is_tcp());
        assert!(TrafficPattern::Tcp { start: 0.0, stop: 1.0, size_bytes: 0 }.is_tcp());
    }
}
