//! The seeded equivalence corpus: a fixed set of scenarios that both
//! engines — the optimized [`crate::Simulation`] and the retained
//! [`crate::ReferenceSimulation`] — must reproduce **byte-identically**
//! (report, packet trace and telemetry manifest).
//!
//! The corpus is the contract that makes the zero-allocation rewrite safe:
//! `crates/sim/tests/equivalence.rs` runs every scenario through both
//! engines and compares the three renderings byte for byte, and
//! `bench_sim` re-asserts the same equality before timing anything. Keep
//! the scenarios deterministic — topology construction, flow setup and
//! fault schedules may depend only on the descriptor fields.

use empower_model::topology::{fig1_scenario, testbed22};
use empower_model::{
    CarrierSense, InterferenceMap, InterferenceModel, LinkId, Network, NodeId, Path, SharedMedium,
};
use empower_telemetry::{Manifest, Telemetry};

use crate::config::SimConfig;
use crate::flow::{FlowSpecSim, TrafficPattern};
use crate::perf::SimPerfStats;
use crate::stats::SimReport;
use crate::trace::Trace;

/// The engine API surface the corpus drives, implemented by both the
/// optimized and the reference simulator so one runner exercises either.
pub trait SimEngine {
    /// Constructs the engine over a prebuilt network.
    fn build(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self;
    /// Attaches a packet-level trace sink.
    fn attach_trace(&mut self, trace: Trace);
    /// Attaches a telemetry registry.
    fn attach_telemetry(&mut self, tele: Telemetry);
    /// The attached telemetry handle.
    fn telemetry(&self) -> &Telemetry;
    /// Detaches and returns the recorded trace.
    fn take_trace(&mut self) -> Option<Trace>;
    /// Registers a flow; returns its index.
    fn add_flow(&mut self, spec: FlowSpecSim) -> usize;
    /// Schedules a capacity change (0 = link death).
    fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64);
    /// Schedules a node crash or recovery.
    fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool);
    /// Replaces a flow's routes mid-run (§3.2 route recomputation).
    fn replace_routes(&mut self, flow: usize, routes: Vec<Path>) -> usize;
    /// Advances simulated time to `until`.
    fn run_until(&mut self, until: f64);
    /// The report as of the current simulated time.
    fn report(&self, duration: f64) -> SimReport;
    /// Read access to the (possibly mutated) network.
    fn network(&self) -> &Network;
    /// Deterministic hot-path work counters.
    fn perf_stats(&self) -> SimPerfStats;
}

macro_rules! impl_sim_engine {
    ($ty:ty) => {
        impl SimEngine for $ty {
            fn build(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self {
                <$ty>::new(net, imap, cfg)
            }
            fn attach_trace(&mut self, trace: Trace) {
                <$ty>::attach_trace(self, trace)
            }
            fn attach_telemetry(&mut self, tele: Telemetry) {
                <$ty>::attach_telemetry(self, tele)
            }
            fn telemetry(&self) -> &Telemetry {
                <$ty>::telemetry(self)
            }
            fn take_trace(&mut self) -> Option<Trace> {
                <$ty>::take_trace(self)
            }
            fn add_flow(&mut self, spec: FlowSpecSim) -> usize {
                <$ty>::add_flow(self, spec)
            }
            fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64) {
                <$ty>::schedule_link_change(self, at, link, capacity_mbps)
            }
            fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool) {
                <$ty>::schedule_node_change(self, at, node, up)
            }
            fn replace_routes(&mut self, flow: usize, routes: Vec<Path>) -> usize {
                <$ty>::replace_routes(self, flow, routes)
            }
            fn run_until(&mut self, until: f64) {
                <$ty>::run_until(self, until)
            }
            fn report(&self, duration: f64) -> SimReport {
                <$ty>::report(self, duration)
            }
            fn network(&self) -> &Network {
                <$ty>::network(self)
            }
            fn perf_stats(&self) -> SimPerfStats {
                <$ty>::perf_stats(self)
            }
        }
    };
}

impl_sim_engine!(crate::engine::Simulation);
impl_sim_engine!(crate::reference::ReferenceSimulation);
impl_sim_engine!(crate::sharded::ShardedSimulation);

/// [`crate::sharded::ShardedSimulation`] pinned to `N` shards at the type
/// level, so determinism gates can sweep shard counts through the generic
/// corpus runner without touching the process-global `EMPOWER_SIM_SHARDS`
/// knob (env mutation would race across concurrently running tests).
pub struct ShardedN<const N: u32>(pub crate::sharded::ShardedSimulation);

impl<const N: u32> SimEngine for ShardedN<N> {
    fn build(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self {
        ShardedN(crate::sharded::ShardedSimulation::with_shards(net, imap, cfg, N))
    }
    fn attach_trace(&mut self, trace: Trace) {
        self.0.attach_trace(trace)
    }
    fn attach_telemetry(&mut self, tele: Telemetry) {
        self.0.attach_telemetry(tele)
    }
    fn telemetry(&self) -> &Telemetry {
        self.0.telemetry()
    }
    fn take_trace(&mut self) -> Option<Trace> {
        self.0.take_trace()
    }
    fn add_flow(&mut self, spec: FlowSpecSim) -> usize {
        self.0.add_flow(spec)
    }
    fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64) {
        self.0.schedule_link_change(at, link, capacity_mbps)
    }
    fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool) {
        self.0.schedule_node_change(at, node, up)
    }
    fn replace_routes(&mut self, flow: usize, routes: Vec<Path>) -> usize {
        self.0.replace_routes(flow, routes)
    }
    fn run_until(&mut self, until: f64) {
        self.0.run_until(until)
    }
    fn report(&self, duration: f64) -> SimReport {
        self.0.report(duration)
    }
    fn network(&self) -> &Network {
        self.0.network()
    }
    fn perf_stats(&self) -> SimPerfStats {
        self.0.perf_stats()
    }
}

/// What a scenario does on top of its topology.
#[derive(Debug, Clone, Copy)]
pub enum Kind {
    /// One CC flow over both Fig. 1 routes (optionally delay-equalized).
    Multipath { delay_eq: bool },
    /// One CC flow on the hybrid Fig. 1 route only.
    SingleRoute,
    /// Two contending single-route CC flows in the shared WiFi domain.
    Contending,
    /// An open-loop flow over-driving the 2-hop WiFi route (no CC).
    OpenLoop { rate_mbps: f64 },
    /// A single file download over both routes.
    File { size_bytes: u64 },
    /// Sequential Poisson file downloads (Table 1's Conc workload).
    Poisson { count: u32, size_bytes: u64, gap_secs: f64 },
    /// A TCP bulk transfer with delay equalization (`0` = run to stop).
    Tcp { size_bytes: u64 },
    /// CC multipath plus a fixed-rate external interferer on WiFi a→b.
    External { rate_mbps: f64 },
    /// The PLC link dies mid-run; the flow keeps its stale routes.
    LinkDeath { at: f64 },
    /// The PLC link dies and later revives at its old capacity.
    LinkFlap { down_at: f64, up_at: f64 },
    /// The Fig. 1 extender crashes and recovers (both routes die with it).
    NodeFlap { down_at: f64, up_at: f64 },
    /// Fig. 12 dynamics: PLC death at `kill_at`, route recomputation onto
    /// the surviving WiFi route at `replace_at`.
    Reroute { kill_at: f64, replace_at: f64 },
    /// One CC flow on the 22-node testbed: direct PLC plus (when the
    /// sampled topology has them) a 2-hop WiFi relay route.
    TestbedPair { src: u32, via: u32, dst: u32 },
    /// A TCP bulk transfer on the testbed (direct PLC route).
    TestbedTcp { src: u32, dst: u32 },
    /// Testbed flow whose WiFi relay crashes and recovers mid-run.
    TestbedNodeFlap { src: u32, via: u32, dst: u32, down_at: f64, up_at: f64 },
}

/// One corpus entry: everything a runner needs to reproduce the run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusScenario {
    /// Stable name (manifest key and test label).
    pub name: &'static str,
    /// Engine RNG seed (`SimConfig::seed`).
    pub cfg_seed: u64,
    /// Topology seed for the sampled testbed (ignored by Fig. 1 entries).
    pub topo_seed: u64,
    /// Capacity-estimation noise (`SimConfig::estimation_rel_std`).
    pub noise: f64,
    /// Simulated duration, seconds.
    pub duration: f64,
    /// The workload / fault schedule.
    pub kind: Kind,
}

/// The three byte-compared renderings of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusOutput {
    /// `format!("{report:?}")` — every stat of every flow, bit-exact.
    pub report: String,
    /// The packet trace as JSON lines.
    pub trace: String,
    /// The telemetry manifest rendering.
    pub manifest: String,
}

/// The fixed corpus (≥ 20 scenarios; see module docs). Order is stable —
/// tests and benches index into it.
pub fn corpus() -> Vec<CorpusScenario> {
    use Kind::*;
    let s = |name, cfg_seed, duration, kind| CorpusScenario {
        name,
        cfg_seed,
        topo_seed: 1,
        noise: 0.0,
        duration,
        kind,
    };
    vec![
        s("fig1_multipath", 1, 30.0, Multipath { delay_eq: false }),
        s("fig1_multipath_seed7", 7, 30.0, Multipath { delay_eq: false }),
        s("fig1_multipath_long", 3, 60.0, Multipath { delay_eq: false }),
        s("fig1_multipath_delay_eq", 2, 20.0, Multipath { delay_eq: true }),
        CorpusScenario {
            name: "fig1_multipath_noisy",
            cfg_seed: 5,
            topo_seed: 1,
            noise: 0.2,
            duration: 30.0,
            kind: Multipath { delay_eq: false },
        },
        s("fig1_single_route", 1, 20.0, SingleRoute),
        s("fig1_contending", 1, 30.0, Contending),
        s("fig1_open_loop_overdrive", 1, 20.0, OpenLoop { rate_mbps: 30.0 }),
        s("fig1_file_download", 1, 60.0, File { size_bytes: 5_000_000 }),
        s("fig1_poisson_files", 4, 60.0, Poisson { count: 4, size_bytes: 400_000, gap_secs: 2.0 }),
        s("fig1_tcp_bulk", 1, 30.0, Tcp { size_bytes: 0 }),
        s("fig1_tcp_file", 2, 60.0, Tcp { size_bytes: 3_000_000 }),
        s("fig1_external_interference", 1, 30.0, External { rate_mbps: 7.5 }),
        s("fig1_link_death", 1, 30.0, LinkDeath { at: 10.0 }),
        s("fig1_link_flap", 1, 30.0, LinkFlap { down_at: 10.0, up_at: 20.0 }),
        s("fig1_node_flap", 1, 30.0, NodeFlap { down_at: 10.0, up_at: 20.0 }),
        s("fig12_reroute_after_death", 1, 30.0, Reroute { kill_at: 10.0, replace_at: 12.0 }),
        s("fig12_reroute_seed9", 9, 30.0, Reroute { kill_at: 8.0, replace_at: 10.5 }),
        s("testbed_pair_1_4_13", 1, 20.0, TestbedPair { src: 1, via: 4, dst: 13 }),
        CorpusScenario {
            name: "testbed_pair_seed9",
            cfg_seed: 2,
            topo_seed: 9,
            noise: 0.0,
            duration: 20.0,
            kind: TestbedPair { src: 1, via: 4, dst: 13 },
        },
        s("testbed_pair_5_8_9", 1, 20.0, TestbedPair { src: 5, via: 8, dst: 9 }),
        s("testbed_tcp_1_13", 1, 20.0, TestbedTcp { src: 1, dst: 13 }),
        s(
            "testbed_node_flap",
            1,
            20.0,
            TestbedNodeFlap { src: 1, via: 4, dst: 13, down_at: 8.0, up_at: 14.0 },
        ),
    ]
}

/// Builds a corpus route from links that are valid by construction.
fn path(net: &Network, links: Vec<LinkId>) -> Path {
    // empower-lint: allow(D005) — corpus fixtures are static; an invalid
    // route is a bug in this file and must abort the run loudly
    Path::new(net, links).expect("corpus route must be valid")
}

/// The testbed route set for a `src → dst` pair: the direct PLC link
/// (required) plus a 2-hop WiFi relay via `via` when the sampled topology
/// has both hops.
fn testbed_routes(net: &Network, src: NodeId, via: NodeId, dst: NodeId) -> Vec<Path> {
    let plc = net
        .find_link(src, dst, empower_model::Medium::Plc)
        .map(|l| l.id)
        // empower-lint: allow(D005) — see `path`: static fixture invariant
        .expect("corpus testbed pair needs a direct PLC link");
    let mut routes = vec![path(net, vec![plc])];
    let hop1 = net.find_link(src, via, empower_model::Medium::WIFI1).map(|l| l.id);
    let hop2 = net.find_link(via, dst, empower_model::Medium::WIFI1).map(|l| l.id);
    if let (Some(a), Some(b)) = (hop1, hop2) {
        routes.push(path(net, vec![a, b]));
    }
    routes
}

/// Runs one scenario through engine `E` with telemetry and a bounded trace
/// attached, returning the three byte-comparable renderings.
pub fn run_scenario<E: SimEngine>(s: &CorpusScenario) -> CorpusOutput {
    let mut sim = setup::<E>(s, true);
    drive(&mut sim, s);
    let report = sim.report(s.duration);
    let mut m = Manifest::new("sim_corpus");
    m.set("scenario", s.name).set("seed", s.cfg_seed).set("duration", s.duration);
    m.attach_counters(sim.telemetry());
    let trace = sim.take_trace().map(|t| t.to_jsonl()).unwrap_or_default();
    CorpusOutput { report: format!("{report:?}"), trace, manifest: m.render() }
}

/// Runs one scenario with **no** trace and **no** telemetry — the timing
/// configuration of `bench_sim` — returning the report rendering and the
/// engine's deterministic work counters.
pub fn run_scenario_plain<E: SimEngine>(s: &CorpusScenario) -> (String, SimPerfStats) {
    let mut sim = setup::<E>(s, false);
    drive(&mut sim, s);
    let report = sim.report(s.duration);
    (format!("{report:?}"), sim.perf_stats())
}

/// Constructs the engine, its topology and its flow set for `s`.
fn setup<E: SimEngine>(s: &CorpusScenario, instrumented: bool) -> E {
    let cfg = SimConfig { seed: s.cfg_seed, estimation_rel_std: s.noise, ..SimConfig::default() };
    let mut sim = match s.kind {
        Kind::TestbedPair { .. } | Kind::TestbedTcp { .. } | Kind::TestbedNodeFlap { .. } => {
            let t = testbed22(s.topo_seed);
            let imap = CarrierSense::default().build_map(&t.net);
            E::build(t.net, imap, cfg)
        }
        _ => {
            let f = fig1_scenario();
            let imap = SharedMedium.build_map(&f.net);
            E::build(f.net, imap, cfg)
        }
    };
    if instrumented {
        sim.attach_telemetry(Telemetry::enabled());
        sim.attach_trace(Trace::bounded(50_000));
    }
    add_flows(&mut sim, s);
    sim
}

/// Registers the scenario's flows and schedules its faults.
fn add_flows<E: SimEngine>(sim: &mut E, s: &CorpusScenario) {
    let stop = s.duration;
    match s.kind {
        Kind::Multipath { delay_eq } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim {
                delay_equalization: delay_eq,
                ..FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop)
            });
        }
        Kind::SingleRoute => {
            let (r1, _, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1], stop));
        }
        Kind::Contending => {
            let f = fig1_scenario();
            let wifi_ab = path(sim.network(), vec![f.wifi_ab]);
            let wifi_bc = path(sim.network(), vec![f.wifi_bc]);
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.extender, vec![wifi_ab], stop));
            sim.add_flow(FlowSpecSim::saturated(f.extender, f.client, vec![wifi_bc], stop));
        }
        Kind::OpenLoop { rate_mbps } => {
            let (_, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim {
                src: f.gateway,
                dst: f.client,
                routes: vec![r2],
                use_cc: false,
                open_loop_rates: vec![rate_mbps],
                pattern: TrafficPattern::SaturatedUdp { start: 0.0, stop },
                delay_equalization: false,
            });
        }
        Kind::File { size_bytes } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim {
                pattern: TrafficPattern::FileDownload { start: 0.0, size_bytes },
                ..FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop)
            });
        }
        Kind::Poisson { count, size_bytes, gap_secs } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim {
                pattern: TrafficPattern::PoissonFiles {
                    start: 0.0,
                    count,
                    size_bytes,
                    mean_gap_secs: gap_secs,
                },
                ..FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop)
            });
        }
        Kind::Tcp { size_bytes } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim {
                pattern: TrafficPattern::Tcp { start: 0.0, stop, size_bytes },
                delay_equalization: true,
                ..FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop)
            });
        }
        Kind::External { rate_mbps } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            let ext = FlowSpecSim::external(sim.network(), f.wifi_ab, rate_mbps, 0.0, stop);
            sim.add_flow(ext);
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop));
        }
        Kind::LinkDeath { at } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop));
            sim.schedule_link_change(at, f.plc_ab, 0.0);
        }
        Kind::LinkFlap { down_at, up_at } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            let plc_cap = sim.network().link(f.plc_ab).capacity_mbps;
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop));
            sim.schedule_link_change(down_at, f.plc_ab, 0.0);
            sim.schedule_link_change(up_at, f.plc_ab, plc_cap);
        }
        Kind::NodeFlap { down_at, up_at } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop));
            sim.schedule_node_change(down_at, f.extender, false);
            sim.schedule_node_change(up_at, f.extender, true);
        }
        Kind::Reroute { kill_at, .. } => {
            let (r1, r2, f) = fig1_paths(sim.network());
            sim.add_flow(FlowSpecSim::saturated(f.gateway, f.client, vec![r1, r2], stop));
            sim.schedule_link_change(kill_at, f.plc_ab, 0.0);
        }
        Kind::TestbedPair { src, via, dst } => {
            let t = testbed22(s.topo_seed);
            let routes = testbed_routes(sim.network(), t.node(src), t.node(via), t.node(dst));
            sim.add_flow(FlowSpecSim::saturated(t.node(src), t.node(dst), routes, stop));
        }
        Kind::TestbedTcp { src, dst } => {
            let t = testbed22(s.topo_seed);
            let routes = testbed_routes(sim.network(), t.node(src), t.node(src), t.node(dst));
            sim.add_flow(FlowSpecSim {
                pattern: TrafficPattern::Tcp { start: 0.0, stop, size_bytes: 0 },
                delay_equalization: true,
                ..FlowSpecSim::saturated(t.node(src), t.node(dst), routes, stop)
            });
        }
        Kind::TestbedNodeFlap { src, via, dst, down_at, up_at } => {
            let t = testbed22(s.topo_seed);
            let routes = testbed_routes(sim.network(), t.node(src), t.node(via), t.node(dst));
            sim.add_flow(FlowSpecSim::saturated(t.node(src), t.node(dst), routes, stop));
            sim.schedule_node_change(down_at, t.node(via), false);
            sim.schedule_node_change(up_at, t.node(via), true);
        }
    }
}

/// Advances the engine to the scenario's end, pausing for mid-run route
/// recomputation where the scenario calls for it.
fn drive<E: SimEngine>(sim: &mut E, s: &CorpusScenario) {
    if let Kind::Reroute { replace_at, .. } = s.kind {
        sim.run_until(replace_at);
        let f = fig1_scenario();
        let wifi_only = path(sim.network(), vec![f.wifi_ab, f.wifi_bc]);
        sim.replace_routes(0, vec![wifi_only]);
    }
    sim.run_until(s.duration);
}

/// The two Fig. 1 routes plus the scenario handles (node/link ids are
/// deterministic, so rebuilding the descriptor is equivalent to threading
/// it through).
fn fig1_paths(net: &Network) -> (Path, Path, empower_model::topology::Fig1Scenario) {
    let f = fig1_scenario();
    let r1 = path(net, vec![f.plc_ab, f.wifi_bc]);
    let r2 = path(net, vec![f.wifi_ab, f.wifi_bc]);
    (r1, r2, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_at_least_20_unique_scenarios() {
        let c = corpus();
        assert!(c.len() >= 20, "corpus holds {} scenarios", c.len());
        let mut names: Vec<&str> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len(), "scenario names must be unique");
    }

    #[test]
    fn corpus_covers_dynamics_and_tcp() {
        let c = corpus();
        assert!(c.iter().any(|s| matches!(s.kind, Kind::Reroute { .. })));
        assert!(c.iter().any(|s| matches!(s.kind, Kind::Tcp { .. } | Kind::TestbedTcp { .. })));
        assert!(c.iter().any(|s| matches!(s.kind, Kind::NodeFlap { .. })));
        assert!(c.iter().any(|s| s.noise > 0.0));
    }

    #[test]
    fn one_scenario_runs_and_renders() {
        let s = corpus()[0];
        let out = run_scenario::<crate::Simulation>(&s);
        assert!(out.report.contains("delivered_bits"));
        assert!(!out.trace.is_empty());
        assert!(out.manifest.contains("sim_corpus"));
    }
}
