#![forbid(unsafe_code)]
//! # empower-sim
//!
//! A deterministic discrete-event packet simulator for hybrid local
//! networks, standing in for the paper's Matlab simulator (§5) and — with
//! the [`crate::tcp`] transport — for the hardware testbed runs (§6).
//!
//! The MAC is the paper's simulation model: CSMA/CA with perfect sensing
//! and no back-off. A link may start transmitting when its queue is
//! backlogged and no link of its interference domain is on the air; when a
//! transmission ends, the backlogged contender that has waited longest goes
//! next (long-run fair airtime sharing without collisions). Frames default
//! to 12 000 bytes — an aggregated A-MPDU/PLC burst, which both 802.11n and
//! HomePlug AV perform — so that multi-thousand-second experiments stay
//! cheap without changing airtime arithmetic.
//!
//! On top of the MAC runs the complete EMPoWER stack from the sibling
//! crates: source routing with the 20-byte header, per-packet weighted
//! route choice, token-bucket admission, per-technology price broadcasts
//! and dual updates each 100 ms slot, price accumulation in headers, paced
//! ACKs, destination reordering with the all-routes-passed loss rule, and
//! optional delay equalization for TCP.

pub mod config;
pub mod corpus;
pub mod engine;
pub mod event;
pub mod flow;
mod metrics;
pub mod packet;
pub mod perf;
mod pool;
pub mod reference;
pub mod sharded;
pub mod stats;
pub mod tcp;
pub mod trace;

pub use config::SimConfig;
pub use engine::{SimInspector, Simulation};
pub use event::{Event, EventQueue, ReferenceEventQueue};
pub use flow::{FlowSpecSim, TrafficPattern};
pub use packet::{PacketId, PacketSlab, SimPacket};
pub use perf::SimPerfStats;
pub use reference::ReferenceSimulation;
pub use sharded::ShardedSimulation;
pub use stats::{FlowStats, SimReport};
pub use tcp::TcpConfig;
pub use trace::{DropSite, Trace, TraceEvent};
