//! The discrete-event engine: MAC, forwarding, control plane, applications.
//!
//! This is the optimized, allocation-free-in-steady-state engine: events
//! live in a timer wheel ([`crate::event::EventQueue`]), MAC contention is
//! decided by word-level AND of interference-domain bitsets against a busy
//! bitmask, packets are pooled in a free-list slab ([`PacketSlab`]) and
//! referenced by 4-byte [`PacketId`] handles, and every per-frame/per-tick
//! scratch vector is reused across calls. Results are bit-identical to
//! [`crate::ReferenceSimulation`] (the retained pre-optimization engine),
//! enforced by the seeded corpus in `crates/sim/tests/equivalence.rs`.

use std::collections::{BTreeMap, VecDeque};

use empower_cc::{BroadcastPlan, FlowController, LinkPriceState, PriceBroadcast, ProportionalFair};
use empower_datapath::{
    AdmitOutcome, CtrlMsg, DatapathConfig, EmpowerHeader, FlowDatapath, IfaceId, IfaceRegistry,
    Outbox, PktHandle, PktPool, PriceStampNode, ReorderEvent, SchedulerConfig, SourceRoute,
    HEADER_LEN,
};
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;
use empower_model::rng::{exponential, normal, stream_seed};
use empower_model::{InterferenceMap, LinkId, Network, NodeId};

use empower_telemetry::{Counter, Telemetry};

use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::flow::{FlowSpecSim, TrafficPattern};
use crate::metrics::EngineCounters;
use crate::packet::{PacketId, PacketKind, PacketSlab, SimPacket};
use crate::perf::SimPerfStats;
use crate::stats::{FlowStats, SimReport};
use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
use crate::trace::{DropSite, Trace, TraceEvent};

/// Sets bit `i` in a packed word array.
#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i` in a packed word array.
#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// One flow's live state inside the engine.
struct FlowRuntime {
    spec: FlowSpecSim,
    /// First link of each route (the source's egress).
    first_links: Vec<LinkId>,
    /// The flow's forwarding graph (`RouteChoice → PriceStamp → [DelayEq]
    /// → Reorder`); the event loop interleaves its stages with MAC and
    /// propagation events through the typed entry points.
    dp: FlowDatapath,
    controller: Option<FlowController<ProportionalFair>>,
    active: bool,
    /// Remaining frame goal of the current file (None = not a file flow).
    current_file_frames: Option<u64>,
    /// Frames of the current file delivered so far.
    file_frames_delivered: u64,
    /// When the current file's transfer began.
    file_began_at: f64,
    /// Precomputed absolute ready-times of queued files (PoissonFiles).
    pending_files: VecDeque<f64>,
    /// TCP machinery, if this is a TCP flow.
    tcp: Option<TcpFlow>,
    /// Source-side backlog of TCP segments awaiting admission (the tun/tap
    /// → datapath queue of the real implementation). Lets TCP self-clock
    /// instead of losing every burst to the token bucket.
    tcp_backlog: VecDeque<u32>,
    /// Guard so exactly one Emit event is in flight per flow.
    emit_pending: bool,
    /// Emission gate: no packet may be offered before this time (a queued
    /// Poisson file that is not ready yet).
    emission_not_before: f64,
    /// Per-route frame counters (`flow/<f>/route/<r>/frames`).
    route_frames: Vec<Counter>,
    /// ACK-cadence counter (`flow/<f>/acks_sent`).
    acks_sent: Counter,
}

struct TcpFlow {
    sender: TcpSender,
    receiver: TcpReceiver,
    /// Map wire sequence → TCP segment id at the destination.
    wire_to_tcp: BTreeMap<u32, u32>,
    /// One-way ACK-path delay, seconds.
    ack_delay: f64,
    /// Time of the currently scheduled RTO check (stale events ignored).
    rto_check_at: Option<f64>,
}

/// Stream-family tag for per-flow RNG streams (shared by both engines so
/// their draw sequences stay bit-identical).
pub(crate) const STREAM_FLOW: u64 = 0x464c_4f57; // "FLOW"
/// Stream-family tag for per-link RNG streams.
pub(crate) const STREAM_LINK: u64 = 0x4c49_4e4b; // "LINK"

/// The simulator.
pub struct Simulation {
    net: Network,
    imap: InterferenceMap,
    reg: IfaceRegistry,
    cfg: SimConfig,
    /// Per-flow random streams (traffic draws: scheduler token choice,
    /// Poisson inter-arrivals). Seeded from `(cfg.seed, STREAM_FLOW, flow
    /// index)` so a flow's draw sequence is independent of every other
    /// flow's draw count — the property the sharded engine (DESIGN.md §13)
    /// relies on to reproduce the single-threaded stream exactly.
    flow_rngs: Vec<StdRng>,
    /// Per-link random streams (capacity-estimation noise), seeded from
    /// `(cfg.seed, STREAM_LINK, link index)`.
    link_rngs: Vec<StdRng>,
    /// Global link id per local link — identity for a standalone engine,
    /// the view remap for a shard worker ([`crate::ShardedSimulation`]).
    /// Everything observable (trace link fields, counter names, RNG
    /// stream seeds) uses these, so a view worker's output needs no
    /// post-hoc translation.
    link_gids: Vec<u32>,
    /// Global flow id per local flow, same role as `link_gids`.
    flow_gids: Vec<usize>,
    events: EventQueue,
    now: f64,
    /// Pooled packet storage; queues and the busy table hold handles.
    slab: PacketSlab,
    /// Pool backing the flows' forwarding graphs. Source-side packets are
    /// transient (admitted, stamped, serialized into [`SimPacket`]s,
    /// released), so after warm-up this pool stops growing too.
    dp_pool: PktPool,
    /// Reused per-stage outbox for the forwarding graphs.
    dp_out: Outbox,
    /// Per-link FIFO queues of slab handles.
    queues: Vec<VecDeque<PacketId>>,
    /// Frame currently on the air per link.
    busy: Vec<Option<PacketId>>,
    /// Packed mirror of `busy`: bit `l` set iff link `l` is transmitting.
    busy_words: Vec<u64>,
    /// Bit `l` set iff `queues[l]` is non-empty.
    backlog_words: Vec<u64>,
    /// Bit `l` set iff link `l` is alive (capacity > 0).
    alive_words: Vec<u64>,
    /// Per-link saturation-penalty domain sums, recomputed once per
    /// control tick (its inputs only change there): exactly
    /// `Σ_{i ∈ I_l} penalty_demand[i]`, in domain order, so `try_start`
    /// reads one f64 instead of re-summing per frame.
    domain_penalty: Vec<f64>,
    last_start: Vec<f64>,
    /// Bits enqueued per link since the last control tick (demand).
    demand_bits: Vec<f64>,
    /// EWMA-smoothed per-link airtime demand. Raw per-slot demand is
    /// quantized to whole frames and therefore noisy (σ ≈ 0.1–0.2 of a
    /// domain's budget at 12 kB frames); feeding it raw into the γ update's
    /// positive-part recursion turns γ into a reflected random walk whose
    /// mean grows with the noise, strangling the rates. Smoothing over a
    /// few slots removes the bias at the cost of ~half a second of control
    /// lag — exactly what a real driver's airtime statistics do.
    last_demand: Vec<f64>,
    /// Slow-EWMA demand driving the saturation penalty: persistent
    /// overdrive must trigger it, single-slot quantization spikes must not.
    penalty_demand: Vec<f64>,
    price_states: Vec<LinkPriceState>,
    /// Precomputed broadcast-vector index plan (fixed for the whole run):
    /// replaces the per-slot `(node, medium)` membership scans of the
    /// reference engine with direct indexed sums, bit-identically.
    bcast_plan: BroadcastPlan,
    broadcasts: Vec<PriceBroadcast>,
    flows: Vec<FlowRuntime>,
    stats: Vec<FlowStats>,
    ticks: u64,
    /// Flows whose FlowStart event has fired.
    started_flows: usize,
    /// Capacity each link had when a node crash took it down (indexed by
    /// link): restored on node recovery, `None` while the link is healthy.
    crash_saved: Vec<Option<f64>>,
    /// Whether the initial ControlTick has been scheduled.
    control_started: bool,
    /// Optional packet-level trace sink.
    trace: Option<Trace>,
    /// Telemetry counter bundle (all no-ops until a registry is attached).
    etel: EngineCounters,
    /// Deterministic hot-path work counters.
    perf: SimPerfStats,
    /// Reused candidate buffer for `tx_end`/`apply_capacity` domain scans.
    scratch_links: Vec<LinkId>,
    /// Reused reorder-result buffer for `deliver_to_reorder`.
    scratch_reorder: Vec<ReorderEvent>,
    /// Reused TCP-ACK buffer for `deliver_to_reorder`.
    scratch_acks: Vec<u32>,
    /// Reused per-node TCP-receiver flags for `control_tick`.
    scratch_tcp_nodes: Vec<bool>,
    /// Reused no-ack price vector for controller steps.
    scratch_prices: Vec<Option<f64>>,
    /// Reused broadcast buffer for the first `control_tick` collect.
    scratch_broadcasts: Vec<PriceBroadcast>,
}

impl Simulation {
    /// Creates an empty simulation over `net`.
    pub fn new(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self {
        let ids = (0..net.link_count() as u32).collect();
        Self::with_global_link_ids(net, imap, cfg, ids)
    }

    /// Like [`Simulation::new`] over a shard view: `link_gids[l]` is the
    /// global id of local link `l`. Per-link RNG streams are seeded by
    /// global id and traces/counters emit global ids, so a worker running
    /// on a view reproduces the single-threaded engine's observable
    /// output for its slice verbatim.
    pub(crate) fn with_global_link_ids(
        net: Network,
        imap: InterferenceMap,
        cfg: SimConfig,
        link_gids: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(link_gids.len(), net.link_count());
        let reg = IfaceRegistry::for_network(&net);
        let l = net.link_count();
        let price_states: Vec<LinkPriceState> =
            net.nodes().iter().map(|n| LinkPriceState::new(&net, &imap, n.id)).collect();
        let bcast_plan = BroadcastPlan::new(&net, &price_states);
        let link_rngs = link_gids
            .iter()
            .map(|&g| StdRng::seed_from_u64(stream_seed(cfg.seed, STREAM_LINK, g as u64)))
            .collect();
        let stride = l.div_ceil(64);
        let mut alive_words = vec![0u64; stride.max(1)];
        for lk in net.links() {
            if lk.is_alive() {
                set_bit(&mut alive_words, lk.id.index());
            }
        }
        Simulation {
            reg,
            slab: PacketSlab::new(),
            dp_pool: PktPool::new(),
            dp_out: Outbox::new(),
            queues: vec![VecDeque::new(); l],
            busy: vec![None; l],
            busy_words: vec![0u64; stride.max(1)],
            backlog_words: vec![0u64; stride.max(1)],
            alive_words,
            domain_penalty: vec![0.0; l],
            last_start: vec![-1.0; l],
            demand_bits: vec![0.0; l],
            last_demand: vec![0.0; l],
            penalty_demand: vec![0.0; l],
            price_states,
            bcast_plan,
            broadcasts: Vec::new(),
            flows: Vec::new(),
            stats: Vec::new(),
            ticks: 0,
            started_flows: 0,
            crash_saved: vec![None; l],
            control_started: false,
            trace: None,
            etel: EngineCounters::disabled(l),
            perf: SimPerfStats::default(),
            scratch_links: Vec::new(),
            scratch_reorder: Vec::new(),
            scratch_acks: Vec::new(),
            scratch_tcp_nodes: Vec::new(),
            scratch_prices: Vec::new(),
            scratch_broadcasts: Vec::new(),
            events: EventQueue::new(),
            now: 0.0,
            net,
            imap,
            cfg,
            flow_rngs: Vec::new(),
            link_rngs,
            link_gids,
            flow_gids: Vec::new(),
        }
    }

    /// The deterministic work counters accumulated so far. The slab's
    /// reuse/growth tallies are folded in; growth events are the engine's
    /// only steady-state hot-path allocations, so they double as
    /// `hot_allocs`.
    pub fn perf_stats(&self) -> SimPerfStats {
        let mut p = self.perf;
        p.slab_hits = self.slab.hits();
        p.slab_grows = self.slab.grows();
        p.hot_allocs = self.slab.grows();
        p
    }

    /// Read access to the network (capacities may change via failures).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// A read-only diagnostic view over the running simulation. The engine
    /// surface proper stays construction + schedule + run; everything
    /// observational lives on [`SimInspector`].
    pub fn inspect(&self) -> SimInspector<'_> {
        SimInspector { sim: self }
    }

    /// Attaches a packet-level trace sink (e.g. `Trace::bounded(100_000)`).
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// Attaches a telemetry registry: MAC, queue, datapath and control-
    /// plane counters register immediately, and the registry's virtual
    /// clock follows simulated time from here on. Flows registered before
    /// the attach get their per-flow counters retroactively; attach before
    /// [`Simulation::add_flow`] for hygiene.
    pub fn attach_telemetry(&mut self, tele: Telemetry) {
        self.etel = EngineCounters::attach(tele, &self.link_gids);
        for f in 0..self.flows.len() {
            let gid = self.flow_gids[f];
            let routes = self.flows[f].spec.routes.len();
            self.flows[f].route_frames = self.etel.flow_route_counters(gid, routes);
            self.flows[f].acks_sent = self.etel.flow_ack_counter(gid);
        }
    }

    /// The attached telemetry handle (disabled if none was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.etel.tele
    }

    /// Detaches and returns the trace recorded so far.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Resolves a path into a wire source route, or `None` when a hop's
    /// receiving interface is gone (node removed mid-run) or the path does
    /// not fit the 6-hop header — callers skip such routes instead of
    /// panicking.
    fn resolve_source_route(&self, p: &empower_model::Path) -> Option<SourceRoute> {
        let mut hops: Vec<IfaceId> = Vec::with_capacity(p.links().len());
        for &l in p.links() {
            let link = self.net.try_link(l)?;
            hops.push(self.reg.id_of(link.to, link.medium)?);
        }
        SourceRoute::new(&hops).ok()
    }

    /// Registers a flow; returns its index. Routes that cannot be resolved
    /// (missing interface, more than 6 hops) are skipped.
    ///
    /// # Panics
    /// Panics if the spec has no usable routes, or an open-loop flow lacks
    /// rates.
    pub fn add_flow(&mut self, spec: FlowSpecSim) -> usize {
        let gid = self.flows.len();
        self.add_flow_global(spec, gid)
    }

    /// [`Simulation::add_flow`] with an explicit *global* flow id: a shard
    /// worker passes the flow's index in the full run so RNG streams,
    /// per-flow counter names and trace flow fields match the
    /// single-threaded engine. Returns the local index.
    pub(crate) fn add_flow_global(&mut self, mut spec: FlowSpecSim, gid: usize) -> usize {
        assert!(!spec.routes.is_empty(), "flow has no routes");
        assert!(
            !self.control_started,
            "flows must be registered before the simulation starts \
             (the control-tick chain may already have drained)"
        );
        if !spec.use_cc {
            assert_eq!(
                spec.open_loop_rates.len(),
                spec.routes.len(),
                "open-loop flows need one rate per route"
            );
        }
        let resolved: Vec<Option<SourceRoute>> =
            spec.routes.iter().map(|p| self.resolve_source_route(p)).collect();
        if resolved.iter().any(Option::is_none) {
            self.etel.route_errors.inc();
            let keep: Vec<bool> = resolved.iter().map(Option::is_some).collect();
            let mut i = 0;
            spec.routes.retain(|_| {
                let keep_it = keep.get(i).copied().unwrap_or(false);
                i += 1;
                keep_it
            });
            if !spec.use_cc {
                let mut i = 0;
                spec.open_loop_rates.retain(|_| {
                    let keep_it = keep.get(i).copied().unwrap_or(false);
                    i += 1;
                    keep_it
                });
            }
        }
        let source_routes: Vec<SourceRoute> = resolved.into_iter().flatten().collect();
        assert!(!spec.routes.is_empty(), "no route of the flow could be resolved");
        let first_links: Vec<LinkId> = spec.routes.iter().map(|p| p.links()[0]).collect();
        let mut sched_cfg = SchedulerConfig::for_routes(spec.routes.len())
            .bucket_depth_mb(4.0 * self.cfg.frame_bits as f64 / 1e6);
        let controller = if spec.use_cc {
            let caps: Vec<f64> =
                spec.routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
            let max_hops = spec.routes.iter().map(|p| p.hop_count()).max().unwrap_or(1);
            Some(FlowController::new(ProportionalFair, self.cfg.cc_config(), caps, max_hops))
        } else {
            if !spec.use_cc {
                sched_cfg = sched_cfg.initial_rates(&spec.open_loop_rates);
            }
            None
        };
        let tcp = spec.pattern.is_tcp().then(|| {
            let total = match spec.pattern {
                TrafficPattern::Tcp { size_bytes: 0, .. } => None,
                TrafficPattern::Tcp { size_bytes, .. } => {
                    Some(size_bytes * 8 / self.cfg.frame_bits + 1)
                }
                _ => unreachable!(),
            };
            // ACK path: the reverse of route 0, small frames, lightly
            // loaded prioritized queues → per-hop store-and-forward of a
            // 40 B segment plus 1 ms of MAC access per hop.
            let ack_delay: f64 = spec.routes[0]
                .links()
                .iter()
                .map(|&l| {
                    let link = self.net.link(l);
                    0.001 + 320.0 / (link.capacity_mbps.max(1.0) * 1e6)
                })
                .sum();
            TcpFlow {
                sender: TcpSender::new(TcpConfig::default(), total),
                receiver: TcpReceiver::new(),
                wire_to_tcp: BTreeMap::new(),
                ack_delay,
                rto_check_at: None,
            }
        });
        let route_count = spec.routes.len();
        let mut dp_cfg = DatapathConfig::for_routes(route_count).scheduler(sched_cfg);
        if spec.delay_equalization {
            dp_cfg = dp_cfg.with_delay_eq();
        }
        // No telemetry scope: the engine keeps its own (manifest-stable)
        // per-flow counters; per-node graph counters are for standalone
        // backends.
        let dp = FlowDatapath::new(&dp_cfg, source_routes, None);
        let start = spec.pattern.start_time();
        let stop = spec.pattern.stop_time();
        let idx = self.flows.len();
        self.flows.push(FlowRuntime {
            spec,
            first_links,
            dp,
            controller,
            active: false,
            current_file_frames: None,
            file_frames_delivered: 0,
            file_began_at: 0.0,
            pending_files: VecDeque::new(),
            tcp,
            tcp_backlog: VecDeque::new(),
            emit_pending: false,
            emission_not_before: 0.0,
            route_frames: self.etel.flow_route_counters(gid, route_count),
            acks_sent: self.etel.flow_ack_counter(gid),
        });
        self.flow_rngs.push(StdRng::seed_from_u64(stream_seed(
            self.cfg.seed,
            STREAM_FLOW,
            gid as u64,
        )));
        self.flow_gids.push(gid);
        self.stats.push(FlowStats { started_at: start, ..Default::default() });
        self.events.push(start, Event::FlowStart { flow: idx as u32 });
        if let Some(stop) = stop {
            self.events.push(stop, Event::FlowStop { flow: idx as u32 });
        }
        idx
    }

    /// Schedules a capacity change (failure injection: 0 = link death).
    pub fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64) {
        self.events.push(at, Event::LinkChange { link, capacity_mbps });
    }

    /// Schedules a node crash (`up = false`) or recovery (`up = true`).
    pub fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool) {
        self.events.push(at, Event::NodeChange { node, up });
    }

    /// Replaces a flow's routes mid-run — the §3.2 route recomputation after
    /// a failure or a large capacity shift (the caller decides *when*, e.g.
    /// via `empower_core`'s RouteMonitor).
    ///
    /// The wire sequence counter and the destination's expected sequence
    /// survive (the reorder buffer is re-keyed, not reset), the controller
    /// restarts fresh on the new route set, and in-flight frames of old
    /// routes still deliver or get declared lost by the normal rules.
    ///
    /// Routes that no longer resolve (an interface vanished with its node,
    /// or the path exceeds the 6-hop header) are skipped; if *none*
    /// resolves the flow keeps its old routes. Returns the number of
    /// routes actually installed (0 = nothing changed).
    ///
    /// # Panics
    /// Panics if `routes` is empty or a route does not match the flow's
    /// endpoints.
    pub fn replace_routes(&mut self, flow: usize, routes: Vec<empower_model::Path>) -> usize {
        assert!(!routes.is_empty(), "a flow needs at least one route");
        for p in &routes {
            assert_eq!(p.source(&self.net), self.flows[flow].spec.src);
            assert_eq!(p.destination(&self.net), self.flows[flow].spec.dst);
        }
        let mut source_routes: Vec<SourceRoute> = Vec::with_capacity(routes.len());
        let routes: Vec<empower_model::Path> = routes
            .into_iter()
            .filter(|p| match self.resolve_source_route(p) {
                Some(sr) => {
                    source_routes.push(sr);
                    true
                }
                None => {
                    self.etel.route_errors.inc();
                    false
                }
            })
            .collect();
        if routes.is_empty() {
            let gid = self.flow_gids[flow];
            self.etel.tele.event("sim", "route_replace_failed", &[("flow", gid.into())]);
            return 0;
        }
        let n = routes.len();
        let caps: Vec<f64> = routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
        let max_hops = routes.iter().map(|p| p.hop_count()).max().unwrap_or(1);
        let fl = &mut self.flows[flow];
        fl.first_links = routes.iter().map(|p| p.links()[0]).collect();
        fl.spec.routes = routes;
        // Re-key every stage of the forwarding graph in one control
        // message: the scheduler's token bucket and wire sequence counter
        // survive, the reorder stage keeps its expected sequence, the
        // ACK collector and delay equalizer restart fresh.
        fl.dp.post(CtrlMsg::ReplaceRoutes(source_routes));
        if fl.controller.is_some() {
            fl.controller =
                Some(FlowController::new(ProportionalFair, self.cfg.cc_config(), caps, max_hops));
        } else {
            // Open-loop flows keep driving each new route at its standalone
            // capacity.
            fl.spec.open_loop_rates =
                fl.spec.routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
            fl.dp.post(CtrlMsg::SetRates(fl.spec.open_loop_rates.clone()));
        }
        fl.dp.tick();
        let gid = self.flow_gids[flow];
        fl.route_frames = self.etel.flow_route_counters(gid, n);
        self.etel.tele.event("sim", "route_replace", &[("flow", gid.into()), ("routes", n.into())]);
        // New route columns in the rate series start now, padded with zeros
        // for the elapsed samples.
        let series = &mut self.stats[flow].rate_series;
        let len = series.first().map_or(0, Vec::len);
        if series.len() < n {
            series.resize_with(n, || vec![0.0; len]);
        }
        n
    }

    /// Runs until `duration` seconds of simulated time and returns the
    /// report.
    pub fn run(&mut self, duration: f64) -> SimReport {
        self.run_until(duration);
        self.report(duration)
    }

    /// Advances the simulation to time `until` and pauses, leaving all
    /// state intact — callers can inspect the network, recompute routes
    /// ([`Simulation::replace_routes`]) or inject changes, then resume.
    pub fn run_until(&mut self, until: f64) {
        if !self.control_started {
            self.control_started = true;
            self.events.push(0.0, Event::ControlTick);
        }
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            let Some((at, event)) = self.events.pop() else { break };
            debug_assert!(at + 1e-9 >= self.now, "time went backwards");
            self.now = at;
            self.etel.tele.set_now(at);
            self.perf.events_dispatched += 1;
            self.dispatch(event);
        }
        self.now = self.now.max(until);
    }

    /// The report as of the current simulated time.
    pub fn report(&self, duration: f64) -> SimReport {
        SimReport { flows: self.stats.clone(), duration }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::ControlTick => self.control_tick(),
            Event::Emit { flow } => self.emit(flow as usize),
            Event::TxEnd { link } => self.tx_end(link),
            Event::FlowStart { flow } => self.flow_start(flow as usize),
            Event::FlowStop { flow } => self.flow_stop(flow as usize),
            Event::LinkChange { link, capacity_mbps } => self.link_change(link, capacity_mbps),
            Event::NodeChange { node, up } => self.node_change(node, up),
            Event::Release { flow, route, seq, price, created_at } => {
                self.deliver_to_reorder(
                    flow as usize,
                    route as usize,
                    seq,
                    price as f64,
                    created_at,
                );
            }
            Event::TcpAckArrival { flow, ack_seq, .. } => self.tcp_ack(flow as usize, ack_seq),
            Event::TcpRtoCheck { flow } => self.tcp_rto_check(flow as usize),
        }
    }

    // ------------------------------------------------------------------
    // Applications
    // ------------------------------------------------------------------

    fn flow_start(&mut self, f: usize) {
        self.started_flows += 1;
        self.flows[f].active = true;
        self.etel.tele.event("sim", "flow_start", &[("flow", self.flow_gids[f].into())]);
        match self.flows[f].spec.pattern {
            TrafficPattern::SaturatedUdp { .. } => self.schedule_emit(f, 0.0),
            TrafficPattern::FileDownload { size_bytes, .. } => {
                self.begin_file(f, size_bytes);
                self.schedule_emit(f, 0.0);
            }
            TrafficPattern::PoissonFiles { count, size_bytes, mean_gap_secs, .. } => {
                // Precompute the Poisson ready-times of the files.
                let mut t = self.now;
                for _ in 0..count {
                    self.flows[f].pending_files.push_back(t);
                    t += exponential(&mut self.flow_rngs[f], mean_gap_secs);
                }
                self.begin_file(f, size_bytes);
                self.flows[f].pending_files.pop_front();
                self.schedule_emit(f, 0.0);
            }
            TrafficPattern::Tcp { .. } => {
                self.tcp_pump(f);
            }
        }
    }

    /// Deactivates flow `f` on its first stop (scheduled stop, final file
    /// completion or TCP goal): records the stop time in its stats and
    /// emits the `flow_stop` hook event, mirroring `flow_start`. A flow
    /// that already stopped (e.g. a TCP goal met before the scheduled
    /// stop) is left untouched.
    fn flow_stop(&mut self, f: usize) {
        if !self.flows[f].active {
            return;
        }
        self.flows[f].active = false;
        self.stats[f].stopped_at = self.now;
        self.etel.tele.event("sim", "flow_stop", &[("flow", self.flow_gids[f].into())]);
    }

    fn begin_file(&mut self, f: usize, size_bytes: u64) {
        let frames = (size_bytes * 8).div_ceil(self.cfg.frame_bits);
        let fl = &mut self.flows[f];
        fl.current_file_frames = Some(frames);
        fl.file_frames_delivered = 0;
        fl.file_began_at = self.now;
    }

    fn schedule_emit(&mut self, f: usize, delay: f64) {
        if !self.flows[f].emit_pending {
            self.flows[f].emit_pending = true;
            self.events.push(self.now + delay, Event::Emit { flow: f as u32 });
        }
    }

    fn emit(&mut self, f: usize) {
        self.flows[f].emit_pending = false;
        if !self.flows[f].active {
            return;
        }
        // A queued file may not be ready yet (Poisson arrivals): a stale
        // Emit event from the previous file's pacing must not start it
        // early.
        let gate = self.flows[f].emission_not_before;
        if self.now + 1e-9 < gate {
            self.schedule_emit(f, gate - self.now);
            return;
        }
        if self.flows[f].spec.pattern.is_tcp() {
            self.tcp_drain(f);
            return;
        }
        // File flows stop offering once the goal is met.
        if self.flows[f]
            .current_file_frames
            .is_some_and(|goal| self.flows[f].file_frames_delivered >= goal)
        {
            return; // completion handling re-arms emission
        }
        let bits = self.cfg.frame_bits;
        let outcome = self.flows[f].dp.admit(
            &mut self.dp_pool,
            &mut self.flow_rngs[f],
            self.now,
            bits,
            &mut self.dp_out,
        );
        match outcome {
            AdmitOutcome::Dropped => {
                self.stats[f].dropped_at_source += 1;
                self.etel.drops_source.inc();
            }
            AdmitOutcome::Admitted { pkt, route } => {
                self.send_admitted(f, pkt, route, PacketKind::Data, None);
            }
        }
        let rate = self.flows[f].dp.total_rate().max(1.0);
        let interval = bits as f64 / 1e6 / rate;
        self.schedule_emit(f, interval);
    }

    /// Takes an admitted graph packet through the `PriceStamp` stage,
    /// serializes it into a [`SimPacket`] and enqueues it on the first link
    /// of route `r` (the graph pool slot is recycled immediately — on the
    /// wire the frame lives in the slab).
    fn send_admitted(
        &mut self,
        f: usize,
        pkt: PktHandle,
        r: usize,
        kind: PacketKind,
        tcp_seq: Option<u32>,
    ) {
        let first = self.flows[f].first_links[r];
        // The source adds its own price contribution for the first hop.
        let src_node = self.flows[f].spec.src;
        let contribution = self.bcast_plan.price_contribution(
            &self.net,
            &self.price_states,
            &self.broadcasts,
            src_node.index(),
            first,
        );
        self.flows[f].dp.stamp(
            &mut self.dp_pool,
            &mut self.flow_rngs[f],
            self.now,
            pkt,
            contribution,
            &mut self.dp_out,
        );
        let header = self.dp_pool.get(pkt).header;
        self.dp_pool.release(pkt);
        let wire_seq = header.seq;
        if self.etel.enabled() {
            // Exercise the real 20-byte wire codec on every emitted frame:
            // an encode/decode round-trip failure is a datapath bug the
            // counters must surface (the disabled path skips this).
            self.flows[f].route_frames[r].inc();
            let mut bytes = [0u8; HEADER_LEN];
            header.encode_into(&mut bytes);
            if EmpowerHeader::decode(&mut &bytes[..]).is_err() {
                self.etel.header_decode_errors.inc();
            }
        }
        if let (Some(tcp), Some(ts)) = (self.flows[f].tcp.as_mut(), tcp_seq) {
            tcp.wire_to_tcp.insert(wire_seq, ts);
        }
        let pkt = SimPacket {
            header,
            size_bits: self.cfg.frame_bits,
            flow: f,
            route: r,
            created_at: self.now,
            kind,
        };
        self.stats[f].sent_frames += 1;
        let id = self.slab.insert(pkt);
        self.enqueue_link(first, id);
    }

    // ------------------------------------------------------------------
    // MAC
    // ------------------------------------------------------------------

    fn enqueue_link(&mut self, link: LinkId, id: PacketId) {
        let l = link.index();
        // Demand is the *offered* airtime (Eq. (7) measures what flows try
        // to push, which is what the prices must react to), so count the
        // frame even when the queue then drops it.
        self.demand_bits[l] += self.slab.get(id).size_bits as f64;
        if !self.net.link(link).is_alive() || self.queues[l].len() >= self.cfg.queue_frames {
            let (flow, seq) = {
                let pkt = self.slab.get(id);
                (pkt.flow, pkt.header.seq)
            };
            self.stats[flow].dropped_in_network += 1;
            let alive = self.net.link(link).is_alive();
            if alive {
                self.etel.drops_overflow.inc();
            } else {
                self.etel.drops_dead_link.inc();
            }
            if let Some(tr) = self.trace.as_mut() {
                let site = if alive { DropSite::QueueOverflow } else { DropSite::DeadLink };
                tr.push(TraceEvent::Drop {
                    t: self.now,
                    flow: self.flow_gids[flow],
                    seq,
                    where_: site,
                });
            }
            self.slab.release(id);
            return;
        }
        self.queues[l].push_back(id);
        set_bit(&mut self.backlog_words, l);
        self.etel.queue_hwm[l].record_max(self.queues[l].len() as u64);
        self.try_start(link);
    }

    fn can_start(&mut self, link: LinkId) -> bool {
        let l = link.index();
        if self.busy[l].is_some() || self.queues[l].is_empty() || !self.net.link(link).is_alive() {
            return false;
        }
        // Word-level domain-occupancy test: one AND per 64 links, early
        // exit on the first busy hit. One probe per word examined.
        let words = self.imap.domain_words(link);
        let mut probes = 0u64;
        let mut clear = true;
        for (wi, &d) in words.iter().enumerate() {
            probes += 1;
            if d & self.busy_words[wi] != 0 {
                clear = false;
                break;
            }
        }
        self.perf.domain_probes += probes;
        clear
    }

    fn try_start(&mut self, link: LinkId) {
        if !self.can_start(link) {
            // A deferral is a backlogged, healthy link that found its
            // contention domain occupied — the CSMA wait the paper's MAC
            // model abstracts into fair sharing.
            let l = link.index();
            if self.busy[l].is_none()
                && !self.queues[l].is_empty()
                && self.net.link(link).is_alive()
            {
                self.etel.mac_deferrals.inc();
            }
            return;
        }
        let l = link.index();
        // `can_start` verified the queue is non-empty.
        let Some(id) = self.queues[l].pop_front() else { return };
        if self.queues[l].is_empty() {
            clear_bit(&mut self.backlog_words, l);
        }
        self.etel.mac_grants.inc();
        let size_bits = self.slab.get(id).size_bits;
        let mut duration = self.net.link(link).tx_time_secs(size_bits);
        if self.cfg.saturation_penalty > 0.0 {
            // CSMA saturation rolloff (see SimConfig::saturation_penalty):
            // collisions and back-off waste airtime once the domain's
            // offered load exceeds what it can carry. The domain sum is
            // precomputed per control tick (`domain_penalty`) — its inputs
            // only change there.
            let y: f64 = self.domain_penalty[l];
            // Tolerance band: a controlled flow rides y ≈ 1 − δ (exactly
            // 1.0 when δ = 0) with measurement jitter; only *persistent*
            // overdrive pays (the penalty demand is slow-smoothed).
            if y > 1.1 {
                let base = duration;
                duration *= 1.0 + self.cfg.saturation_penalty * (y - 1.1);
                self.etel.mac_penalty_frames.inc();
                self.etel.mac_penalty_airtime_us.add(((duration - base) * 1e6) as u64);
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            let pkt = self.slab.get(id);
            tr.push(TraceEvent::TxStart {
                t: self.now,
                link: self.link_gids[link.index()],
                flow: self.flow_gids[pkt.flow],
                seq: pkt.header.seq,
                bits: pkt.size_bits,
            });
        }
        self.busy[l] = Some(id);
        set_bit(&mut self.busy_words, l);
        self.last_start[l] = self.now;
        self.events.push(self.now + duration, Event::TxEnd { link });
    }

    fn tx_end(&mut self, link: LinkId) {
        let l = link.index();
        // A stale TxEnd: the frame that was on the air got dropped when its
        // link (or an endpoint node) went down mid-transmission.
        let Some(id) = self.busy[l].take() else {
            return;
        };
        clear_bit(&mut self.busy_words, l);
        if let Some(tr) = self.trace.as_mut() {
            let pkt = self.slab.get(id);
            tr.push(TraceEvent::TxEnd {
                t: self.now,
                link: self.link_gids[link.index()],
                flow: self.flow_gids[pkt.flow],
                seq: pkt.header.seq,
            });
        }
        self.receive(link, id);
        // Give the freed medium to the longest-waiting backlogged contender
        // (round-robin-fair CSMA without collisions), then everyone else
        // that still fits. Candidates are pre-filtered to the *eligible*
        // domain members (backlogged ∧ alive ∧ idle) by word AND — links
        // the filter skips could never have started or counted a deferral
        // (their status cannot change inside this loop), so grants and
        // deferral counts match the reference exactly.
        let mut cands = std::mem::take(&mut self.scratch_links);
        cands.clear();
        {
            let words = self.imap.domain_words(link);
            for (wi, &d) in words.iter().enumerate() {
                let mut m =
                    d & self.backlog_words[wi] & self.alive_words[wi] & !self.busy_words[wi];
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    cands.push(LinkId((wi * 64 + bit) as u32));
                    m &= m - 1;
                }
            }
        }
        self.perf.bytes_not_allocated += std::mem::size_of_val(self.imap.domain(link)) as u64;
        cands.sort_by(|a, b| {
            self.last_start[a.index()].total_cmp(&self.last_start[b.index()]).then_with(|| a.cmp(b))
        });
        for &cand in &cands {
            self.try_start(cand);
        }
        self.scratch_links = cands;
    }

    fn receive(&mut self, link: LinkId, id: PacketId) {
        let node = self.net.link(link).to;
        let medium = self.net.link(link).medium;
        let flow = self.slab.get(id).flow;
        let Some(arrived_iface) = self.reg.id_of(node, medium) else {
            // The receiving interface vanished (node removal mid-run).
            self.stats[flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            self.slab.release(id);
            return;
        };
        if self.slab.get(id).header.route.is_destination(arrived_iface) {
            self.arrive_at_destination(id);
            return;
        }
        let Some(next_iface) = self.slab.get(id).header.route.next_hop_after(arrived_iface) else {
            // Mis-routed (e.g. stale route after failure): drop.
            self.stats[flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            self.slab.release(id);
            return;
        };
        let Some((nnode, nmedium)) = self.reg.iface_of(next_iface) else {
            self.stats[flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            self.slab.release(id);
            return;
        };
        let Some(next_link) = self.net.find_link(node, nnode, nmedium).map(|l| l.id) else {
            self.stats[flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            self.slab.release(id);
            return;
        };
        // Forwarding node adds its price contribution (Eq. (9)) — the
        // same stage logic the graph's `PriceStamp` node runs.
        let contribution = self.bcast_plan.price_contribution(
            &self.net,
            &self.price_states,
            &self.broadcasts,
            node.index(),
            next_link,
        );
        PriceStampNode::apply(&mut self.slab.get_mut(id).header, contribution);
        self.enqueue_link(next_link, id);
    }

    fn arrive_at_destination(&mut self, id: PacketId) {
        let (f, route, seq, price_f32, created_at) = {
            let pkt = self.slab.get(id);
            (pkt.flow, pkt.route, pkt.header.seq, pkt.header.price, pkt.created_at)
        };
        self.slab.release(id);
        let price = price_f32 as f64;
        let delay = self.now - created_at;
        // Stale route index (route set shrank mid-flight): the equalizer
        // and reorder state below it no longer have this route's slot.
        if route >= self.flows[f].spec.routes.len() {
            self.stats[f].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        }
        let hold = self.flows[f].dp.arrival_hold(route, delay);
        if hold > 1e-9 {
            // The f32 price round-trips losslessly through the event.
            self.events.push(
                self.now + hold,
                Event::Release {
                    flow: f as u32,
                    route: route as u16,
                    seq,
                    price: price_f32,
                    created_at,
                },
            );
            return;
        }
        self.deliver_to_reorder(f, route, seq, price, created_at);
    }

    fn deliver_to_reorder(
        &mut self,
        f: usize,
        route: usize,
        seq: u32,
        price: f64,
        created_at: f64,
    ) {
        // A packet (or delay-equalizer release) launched before a route
        // replacement shrank the flow's route set: its route index no
        // longer exists in the per-route receiver state. Count it as lost
        // in the transient rather than indexing out of bounds.
        if route >= self.flows[f].spec.routes.len() {
            self.stats[f].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        }
        // End-to-end latency sample: source emission to (pre-reorder)
        // arrival at the destination stack, including any delay-equalizer
        // hold that brought us here.
        let delay = self.now - created_at;
        let st = &mut self.stats[f];
        st.delay_sum_secs += delay;
        st.delay_samples += 1;
        if delay > st.delay_max_secs {
            st.delay_max_secs = delay;
        }
        let mut events = std::mem::take(&mut self.scratch_reorder);
        events.clear();
        // The graph's `Reorder` stage: price observation, the all-routes
        // loss rule, delivery counting for the paced ACKs.
        let delivered_now = self.flows[f].dp.accept(route, seq, price, &mut events);
        if !events.is_empty() {
            self.etel.reorder_flushes.inc();
            self.perf.bytes_not_allocated +=
                (events.len() * std::mem::size_of::<ReorderEvent>()) as u64;
        }
        let mut tcp_acks = std::mem::take(&mut self.scratch_acks);
        tcp_acks.clear();
        for ev in &events {
            match *ev {
                ReorderEvent::Deliver(s) => {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent::Deliver {
                            t: self.now,
                            flow: self.flow_gids[f],
                            seq: s,
                        });
                    }
                    if let Some(tcp) = self.flows[f].tcp.as_mut() {
                        if let Some(ts) = tcp.wire_to_tcp.remove(&s) {
                            tcp_acks.push(tcp.receiver.on_segment(ts));
                        }
                    }
                }
                ReorderEvent::Lost(s) => {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent::DeclaredLost {
                            t: self.now,
                            flow: self.flow_gids[f],
                            seq: s,
                        });
                    }
                    self.stats[f].declared_lost += 1;
                    self.etel.loss_rule_firings.inc();
                }
            }
        }
        if delivered_now > 0 {
            self.etel.reorder_delivered.add(delivered_now);
            let bits = delivered_now * self.cfg.frame_bits;
            self.stats[f].delivered_bits += bits;
            let bucket = self.now as usize;
            let series = &mut self.stats[f].throughput_series;
            if series.len() <= bucket {
                series.resize(bucket + 1, 0.0);
            }
            series[bucket] += bits as f64 / 1e6;
            self.flows[f].file_frames_delivered += delivered_now;
            self.check_file_completion(f);
        }
        if let Some(tcp) = self.flows[f].tcp.as_ref() {
            let ack_delay = tcp.ack_delay;
            if !tcp_acks.is_empty() {
                self.perf.bytes_not_allocated +=
                    (tcp_acks.len() * std::mem::size_of::<u32>()) as u64;
            }
            for &ack in &tcp_acks {
                self.events.push(
                    self.now + ack_delay,
                    Event::TcpAckArrival { flow: f as u32, ack_seq: ack, dup: false },
                );
            }
        }
        self.scratch_reorder = events;
        self.scratch_acks = tcp_acks;
    }

    fn check_file_completion(&mut self, f: usize) {
        let Some(goal) = self.flows[f].current_file_frames else {
            return;
        };
        if self.flows[f].file_frames_delivered < goal {
            return;
        }
        let took = self.now - self.flows[f].file_began_at;
        self.stats[f].completions.push(took);
        self.etel.tele.event(
            "sim",
            "file_complete",
            &[("flow", self.flow_gids[f].into()), ("secs", took.into())],
        );
        match self.flows[f].spec.pattern {
            TrafficPattern::PoissonFiles { size_bytes, .. } => {
                if let Some(ready) = self.flows[f].pending_files.pop_front() {
                    let begin_in = (ready - self.now).max(0.0);
                    // Sequential downloads: the next file begins when it is
                    // both ready and the previous one is done. In-flight
                    // frames of the old file carry over.
                    let frames = (size_bytes * 8).div_ceil(self.cfg.frame_bits);
                    let excess = self.flows[f].file_frames_delivered - goal;
                    let fl = &mut self.flows[f];
                    fl.current_file_frames = Some(frames);
                    fl.file_frames_delivered = excess;
                    fl.file_began_at = self.now + begin_in;
                    fl.emission_not_before = self.now + begin_in;
                    self.schedule_emit(f, begin_in);
                } else {
                    self.flow_stop(f);
                    self.flows[f].current_file_frames = None;
                }
            }
            _ => {
                self.flow_stop(f);
                self.flows[f].current_file_frames = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    fn control_tick(&mut self) {
        let slot = self.cfg.slot_secs;
        // 1. Per-link airtime-demand measurement over the last slot, with
        //    optional capacity-estimation error.
        for l in 0..self.net.link_count() {
            let link = self.net.link(LinkId(l as u32));
            let demand = if link.is_alive() {
                self.demand_bits[l] / (link.capacity_mbps * 1e6 * slot)
            } else if self.demand_bits[l] > 0.0 {
                // Traffic offered to a dead link: the capacity estimator
                // notices within ~100 ms (§6.1), and a zero-capacity link
                // under any load is infinitely oversubscribed. Report a
                // mildly saturated demand: enough for prices to drain the
                // route, small enough that γ unwinds quickly on recovery
                // (the γ update (8) decays at most α per slot).
                1.2
            } else {
                0.0
            };
            let noisy = if self.cfg.estimation_rel_std > 0.0 {
                demand * normal(&mut self.link_rngs[l], 1.0, self.cfg.estimation_rel_std).max(0.05)
            } else {
                demand
            };
            let smoothed =
                self.cfg.demand_ewma * noisy + (1.0 - self.cfg.demand_ewma) * self.last_demand[l];
            let owner = link.from;
            self.price_states[owner.index()].set_demand(LinkId(l as u32), smoothed);
            self.last_demand[l] = smoothed;
            self.penalty_demand[l] = 0.05 * noisy + 0.95 * self.penalty_demand[l];
            self.demand_bits[l] = 0.0;
        }
        // Per-domain saturation-penalty sums for the coming slot: one pass
        // here instead of a domain walk on every frame start.
        if self.cfg.saturation_penalty > 0.0 {
            for l in 0..self.net.link_count() {
                let y: f64 = self
                    .imap
                    .domain(LinkId(l as u32))
                    .iter()
                    .map(|&i| self.penalty_demand[i.index()])
                    .sum();
                self.domain_penalty[l] = y;
            }
        }
        // 2. TCP piggyback (§6.4): destinations of active TCP flows flag
        //    themselves; the flag rides on their price broadcasts and
        //    tightens the airtime budget across their contention domains.
        let mut tcp_nodes = std::mem::take(&mut self.scratch_tcp_nodes);
        tcp_nodes.clear();
        tcp_nodes.resize(self.net.node_count(), false);
        self.perf.bytes_not_allocated += self.net.node_count() as u64;
        for fl in &self.flows {
            if fl.active && fl.spec.pattern.is_tcp() {
                tcp_nodes[fl.spec.dst.index()] = true;
            }
        }
        for s in self.price_states.iter_mut() {
            s.set_tcp_receiver(tcp_nodes[s.node().index()]);
        }
        self.scratch_tcp_nodes = tcp_nodes;
        // 3. Broadcast, overhear, update duals.
        let mut bcast = std::mem::take(&mut self.scratch_broadcasts);
        bcast.clear();
        for s in &self.price_states {
            s.make_broadcasts_into(&self.net, &mut bcast);
        }
        self.perf.bytes_not_allocated +=
            (bcast.len() * std::mem::size_of::<PriceBroadcast>()) as u64;
        let alpha = self.cfg.cc.alpha;
        let delta = self.cfg.delta;
        let delta_tcp = self.cfg.tcp_delta.max(delta);
        let margin_violations = self.bcast_plan.update_gammas_with_tcp_margin(
            &mut self.price_states,
            &bcast,
            alpha,
            delta,
            delta_tcp,
        );
        self.scratch_broadcasts = bcast;
        self.etel.ctrl_ticks.inc();
        self.etel.cc_price_updates.add(self.net.link_count() as u64);
        self.etel.cc_margin_violations.add(margin_violations as u64);
        // 3. Fresh broadcasts carry the updated γ sums for the coming slot.
        self.broadcasts.clear();
        for s in &self.price_states {
            s.make_broadcasts_into(&self.net, &mut self.broadcasts);
        }
        self.perf.bytes_not_allocated +=
            (self.broadcasts.len() * std::mem::size_of::<PriceBroadcast>()) as u64;
        // 4. ACKs and controller steps.
        for f in 0..self.flows.len() {
            if self.flows[f].controller.is_none() {
                continue;
            }
            let ack = self.flows[f].dp.maybe_ack(self.now);
            if ack.is_some() {
                self.flows[f].acks_sent.inc();
            }
            let rates = match ack {
                Some(a) => {
                    let Some(controller) = self.flows[f].controller.as_mut() else { continue };
                    controller.on_ack(&a.route_prices)
                }
                None => {
                    let routes = self.flows[f].spec.routes.len();
                    self.scratch_prices.clear();
                    self.scratch_prices.resize(routes, None);
                    self.perf.bytes_not_allocated +=
                        (routes * std::mem::size_of::<Option<f64>>()) as u64;
                    let prices = &self.scratch_prices;
                    let Some(controller) = self.flows[f].controller.as_mut() else { continue };
                    controller.on_ack(prices)
                }
            };
            // The controller's fresh rate vector is moved into the control
            // message (no extra allocation) and applied at the tick.
            self.flows[f].dp.post(CtrlMsg::SetRates(rates.per_route));
            self.flows[f].dp.tick();
        }
        // 5. Once per second: sample injected rates.
        let per_sec = (1.0 / slot).round() as u64;
        if self.ticks.is_multiple_of(per_sec) {
            for f in 0..self.flows.len() {
                let active = self.flows[f].active;
                let fl = &self.flows[f];
                let rates: &[f64] = match fl.controller.as_ref() {
                    Some(c) => c.rates(),
                    None => &fl.spec.open_loop_rates,
                };
                self.perf.bytes_not_allocated += std::mem::size_of_val(rates) as u64;
                let series = &mut self.stats[f].rate_series;
                if series.is_empty() {
                    *series = vec![Vec::new(); rates.len()];
                }
                for (r, &x) in rates.iter().enumerate() {
                    series[r].push(if active { x } else { 0.0 });
                }
            }
        }
        self.ticks += 1;
        // The control-tick chain runs to the caller's horizon uncondition-
        // ally (`run_until` stops it). An idle-detection early exit used to
        // stop the chain once every flow had drained, but the tick count —
        // and with it γ decay and the rate-series length — then depended on
        // *global* drain state, which a sharded run (DESIGN.md §13) cannot
        // reproduce per shard. Idle ticks are cheap; determinism across
        // shard counts is not.
        self.events.push(self.now + slot, Event::ControlTick);
    }

    fn link_change(&mut self, link: LinkId, capacity_mbps: f64) {
        self.etel.tele.event(
            "sim",
            "link_change",
            &[
                ("link", self.link_gids[link.index()].into()),
                ("capacity_mbps", capacity_mbps.into()),
            ],
        );
        // An explicit capacity change overrides whatever a node crash saved.
        self.crash_saved[link.index()] = None;
        self.apply_capacity(link, capacity_mbps);
    }

    /// Sets a link's capacity mid-run, handling the death/revival edges:
    /// queued and in-flight frames on a dying link are dropped, a reviving
    /// link gets its stale γ dual forgotten so prices restart from fresh
    /// measurements instead of unwinding at α per slot.
    fn apply_capacity(&mut self, link: LinkId, capacity_mbps: f64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::LinkChange {
                t: self.now,
                link: self.link_gids[link.index()],
                capacity_mbps,
            });
        }
        let was_alive = self.net.link(link).is_alive();
        self.net.set_capacity(link, capacity_mbps);
        let l = link.index();
        let alive_now = self.net.link(link).is_alive();
        if alive_now {
            set_bit(&mut self.alive_words, l);
        } else {
            clear_bit(&mut self.alive_words, l);
        }
        if !alive_now {
            // Queued frames on a dead link are lost, and so is the frame on
            // the air (its TxEnd event goes stale and is ignored).
            let in_flight = self.busy[l].take();
            if in_flight.is_some() {
                clear_bit(&mut self.busy_words, l);
            }
            let freed_medium = in_flight.is_some();
            let lost = self.queues[l].len() + usize::from(freed_medium);
            self.perf.bytes_not_allocated += (lost * std::mem::size_of::<SimPacket>()) as u64;
            while let Some(id) = self.queues[l].pop_front() {
                self.drop_dead(id);
            }
            clear_bit(&mut self.backlog_words, l);
            if let Some(id) = in_flight {
                self.drop_dead(id);
            }
            if freed_medium {
                // The aborted transmission freed its contention domain.
                let mut cands = std::mem::take(&mut self.scratch_links);
                cands.clear();
                cands.extend_from_slice(self.imap.domain(link));
                self.perf.bytes_not_allocated +=
                    (cands.len() * std::mem::size_of::<LinkId>()) as u64;
                for &cand in &cands {
                    self.try_start(cand);
                }
                self.scratch_links = cands;
            }
        } else {
            if !was_alive {
                // Topology change: the γ this link's owner learned while it
                // was dead (demand-starved or drain-priced) is stale.
                let owner = self.net.link(link).from;
                self.price_states[owner.index()].reset_gamma(link);
            }
            self.try_start(link);
        }
        // Route-capacity clamps in controllers are intentionally NOT
        // updated: the controller adapts through prices, as in the paper
        // (routes are only recomputed on failures, by the caller).
    }

    /// Drops one slab-held frame that died with its link: stats, telemetry,
    /// trace, then the slot goes back to the free list.
    fn drop_dead(&mut self, id: PacketId) {
        let (flow, seq) = {
            let pkt = self.slab.get(id);
            (pkt.flow, pkt.header.seq)
        };
        self.stats[flow].dropped_in_network += 1;
        self.etel.drops_dead_link.inc();
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::Drop {
                t: self.now,
                flow: self.flow_gids[flow],
                seq,
                where_: DropSite::DeadLink,
            });
        }
        self.slab.release(id);
    }

    fn node_change(&mut self, node: NodeId, up: bool) {
        self.etel.tele.event(
            "sim",
            "node_change",
            &[("node", node.index().into()), ("up", up.into())],
        );
        let adjacent: Vec<LinkId> = self
            .net
            .links()
            .iter()
            .filter(|lk| lk.from == node || lk.to == node)
            .map(|lk| lk.id)
            .collect();
        for link in adjacent {
            let l = link.index();
            if up {
                if let Some(cap) = self.crash_saved[l].take() {
                    self.apply_capacity(link, cap);
                }
            } else {
                if self.net.link(link).is_alive() && self.crash_saved[l].is_none() {
                    self.crash_saved[l] = Some(self.net.link(link).capacity_mbps);
                }
                self.apply_capacity(link, 0.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // TCP
    // ------------------------------------------------------------------

    fn tcp_pump(&mut self, f: usize) {
        if !self.flows[f].active {
            return;
        }
        loop {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            let Some((tcp_seq, is_retx)) = tcp.sender.next_to_send() else {
                break;
            };
            tcp.sender.on_sent(tcp_seq, self.now, is_retx);
            // Into the source queue; the drain loop paces admission. A full
            // queue is the §6.4 drop TCP perceives as congestion.
            if self.flows[f].tcp_backlog.len() >= 64 {
                self.stats[f].dropped_at_source += 1;
                self.etel.drops_source.inc();
            } else {
                self.flows[f].tcp_backlog.push_back(tcp_seq);
            }
        }
        self.tcp_drain(f);
        self.tcp_arm_rto(f);
    }

    /// Drains the TCP source queue at the admitted rate.
    fn tcp_drain(&mut self, f: usize) {
        if self.flows[f].tcp_backlog.is_empty() || !self.flows[f].active {
            return;
        }
        let bits = self.cfg.frame_bits;
        if self.flows[f].spec.use_cc {
            let outcome = self.flows[f].dp.admit(
                &mut self.dp_pool,
                &mut self.flow_rngs[f],
                self.now,
                bits,
                &mut self.dp_out,
            );
            match outcome {
                AdmitOutcome::Dropped => {
                    // No tokens yet: retry after roughly one frame time at
                    // the admitted rate; the segment stays queued.
                }
                AdmitOutcome::Admitted { pkt, route } => {
                    if let Some(tcp_seq) = self.flows[f].tcp_backlog.pop_front() {
                        self.send_admitted(f, pkt, route, PacketKind::TcpData, Some(tcp_seq));
                    } else {
                        self.dp_pool.release(pkt);
                    }
                }
            }
        } else {
            // Open loop: pin route 0 without consuming tokens or RNG draws.
            if let Some(tcp_seq) = self.flows[f].tcp_backlog.pop_front() {
                let pkt = self.flows[f].dp.admit_direct(&mut self.dp_pool, self.now, bits, 0);
                self.send_admitted(f, pkt, 0, PacketKind::TcpData, Some(tcp_seq));
            }
        }
        if !self.flows[f].tcp_backlog.is_empty() {
            let rate = self.flows[f].dp.total_rate().max(1.0);
            let interval = bits as f64 / 1e6 / rate;
            self.schedule_emit(f, interval);
        }
    }

    fn tcp_arm_rto(&mut self, f: usize) {
        let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
        if tcp.rto_check_at.is_none() {
            let at = self.now + tcp.sender.rto();
            tcp.rto_check_at = Some(at);
            self.events.push(at, Event::TcpRtoCheck { flow: f as u32 });
        }
    }

    fn tcp_ack(&mut self, f: usize, ack_seq: u32) {
        {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            tcp.sender.on_ack(ack_seq, self.now);
            if tcp.sender.done() {
                let elapsed = self.now - self.stats[f].started_at;
                self.stats[f].completions.push(elapsed);
                self.flow_stop(f);
                return;
            }
        }
        self.tcp_pump(f);
    }

    fn tcp_rto_check(&mut self, f: usize) {
        let active = self.flows[f].active;
        let retransmit = {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            tcp.rto_check_at = None;
            if !active {
                return;
            }
            match tcp.sender.on_rto_check(self.now) {
                Some(next) => {
                    tcp.rto_check_at = Some(next);
                    true
                }
                None => false,
            }
        };
        if retransmit {
            let at = self.flows[f].tcp.as_ref().and_then(|t| t.rto_check_at);
            if let Some(at) = at {
                self.events.push(at, Event::TcpRtoCheck { flow: f as u32 });
            }
            self.tcp_pump(f);
        }
    }
}

/// Read-only diagnostic view over a [`Simulation`], obtained via
/// [`Simulation::inspect`]. Borrows the engine immutably, so nothing
/// observed here can perturb a run.
pub struct SimInspector<'a> {
    sim: &'a Simulation,
}

impl SimInspector<'_> {
    /// The worst per-domain airtime demand observed at the last control
    /// tick, with the link whose domain it is.
    pub fn worst_domain(&self) -> (f64, LinkId) {
        let mut worst = (0.0, LinkId(0));
        for l in 0..self.sim.net.link_count() {
            let y: f64 = self
                .sim
                .imap
                .domain(LinkId(l as u32))
                .iter()
                .map(|&i| self.sim.last_demand[i.index()])
                .sum();
            if y > worst.0 {
                worst = (y, LinkId(l as u32));
            }
        }
        worst
    }

    /// Last tick's airtime demand of one link.
    pub fn link_demand(&self, link: LinkId) -> f64 {
        self.sim.last_demand[link.index()]
    }

    /// The route prices a flow's controller currently believes.
    pub fn flow_prices(&self, flow: usize) -> Option<Vec<f64>> {
        self.sim.flows[flow].controller.as_ref().map(|c| c.believed_prices().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    fn fig1_sim() -> (Simulation, Vec<Path>) {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let sim = Simulation::new(s.net, imap, SimConfig::default());
        (sim, vec![route1, route2])
    }

    #[test]
    fn empower_flow_reaches_the_multipath_optimum() {
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        sim.add_flow(FlowSpecSim::saturated(src, dst, routes, 300.0));
        let report = sim.run(300.0);
        let t = report.final_throughput(0, 10);
        // Paper optimum: 16.67 Mbps. The packet sim pays real queueing and
        // slot granularity; expect within ~10 %.
        assert!(t > 15.0 && t < 17.5, "throughput {t}");
    }

    #[test]
    fn single_route_flow_saturates_the_path() {
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        sim.add_flow(FlowSpecSim::saturated(src, dst, vec![routes[0].clone()], 60.0));
        let report = sim.run(60.0);
        let t = report.final_throughput(0, 10);
        assert!(t > 8.5 && t < 10.5, "throughput {t}"); // R(P) = 10
    }

    #[test]
    fn open_loop_overload_collapses() {
        // Drive the 2-hop WiFi route at 3× capacity without CC: goodput
        // lands well below the 10 Mbps a paced source would get.
        let (mut sim, routes) = fig1_sim();
        let src = routes[1].source(sim.network());
        let dst = routes[1].destination(sim.network());
        sim.add_flow(FlowSpecSim {
            src,
            dst,
            routes: vec![routes[1].clone()],
            use_cc: false,
            open_loop_rates: vec![30.0],
            pattern: TrafficPattern::SaturatedUdp { start: 0.0, stop: 60.0 },
            delay_equalization: false,
        });
        let report = sim.run(60.0);
        let t = report.final_throughput(0, 10);
        // The frame-fair MAC caps goodput at the path capacity; the damage
        // of over-driving shows as sustained queue drops (and, with
        // contending flows, wasted shared airtime).
        assert!(t < 10.8, "goodput {t} cannot exceed R(P)");
        assert!(report.flows[0].dropped_in_network > 1000, "sustained queue drops");
    }

    #[test]
    fn file_download_completes_and_records_duration() {
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        sim.add_flow(FlowSpecSim {
            src,
            dst,
            routes,
            use_cc: true,
            open_loop_rates: Vec::new(),
            // 5 MB at ~16 Mbps ≈ 2.5 s + ramp.
            pattern: TrafficPattern::FileDownload { start: 0.0, size_bytes: 5_000_000 },
            delay_equalization: false,
        });
        let report = sim.run(120.0);
        assert_eq!(report.flows[0].completions.len(), 1);
        let dur = report.flows[0].completions[0];
        assert!(dur > 2.0 && dur < 60.0, "duration {dur}");
    }

    #[test]
    fn two_contending_flows_share_the_wifi_medium() {
        // Flow A on the 1-hop WiFi a→b link, flow B on the 1-hop WiFi b→c
        // link: same domain, so rates must sum to ≲ the Lemma-1 region.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let wifi_ab = Path::new(&s.net, vec![s.wifi_ab]).unwrap();
        let wifi_bc = Path::new(&s.net, vec![s.wifi_bc]).unwrap();
        let mut sim = Simulation::new(s.net, imap, SimConfig::default());
        let a_src = s.gateway;
        let a_dst = s.extender;
        sim.add_flow(FlowSpecSim::saturated(a_src, a_dst, vec![wifi_ab], 120.0));
        sim.add_flow(FlowSpecSim::saturated(s.extender, s.client, vec![wifi_bc], 120.0));
        let report = sim.run(120.0);
        let ta = report.final_throughput(0, 10);
        let tb = report.final_throughput(1, 10);
        // Airtime feasibility: ta/15 + tb/30 ≤ 1 (+ tolerance).
        assert!(ta / 15.0 + tb / 30.0 < 1.08, "ta {ta} tb {tb}");
        assert!(ta > 3.0 && tb > 3.0, "both make progress: {ta}, {tb}");
    }

    #[test]
    fn link_failure_kills_the_route_traffic() {
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        let plc_link = routes[0].links()[0];
        sim.add_flow(FlowSpecSim::saturated(src, dst, vec![routes[0].clone()], 60.0));
        sim.schedule_link_change(30.0, plc_link, 0.0);
        let report = sim.run(60.0);
        let before = report.flows[0].mean_throughput(20, 29);
        let after = report.flows[0].mean_throughput(40, 59);
        assert!(before > 8.0, "before {before}");
        assert!(after < 0.5, "after {after}");
    }

    #[test]
    fn tcp_transfers_over_empower() {
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        sim.add_flow(FlowSpecSim {
            src,
            dst,
            routes,
            use_cc: true,
            open_loop_rates: Vec::new(),
            pattern: TrafficPattern::Tcp { start: 0.0, stop: 120.0, size_bytes: 0 },
            delay_equalization: true,
        });
        let report = sim.run(120.0);
        let t = report.final_throughput(0, 20);
        assert!(t > 8.0, "TCP throughput {t}");
        // TCP over two routes beats the best single route (10 Mbps)...
        assert!(t > 10.0, "multipath TCP gain: {t}");
    }

    #[test]
    fn external_interference_is_respected_not_squeezed() {
        // §4.3: "except during a short transition phase, non-EMPoWER
        // clients are not affected by EMPoWER clients". An external node
        // half-loads the WiFi a→b link; the EMPoWER flow must leave that
        // traffic intact and fill only the residual region.
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        let wifi_ab = routes[1].links()[0];
        let ext = FlowSpecSim::external(sim.network(), wifi_ab, 7.5, 0.0, 300.0);
        let ext_idx = sim.add_flow(ext);
        sim.add_flow(FlowSpecSim::saturated(src, dst, routes, 300.0));
        let report = sim.run(300.0);
        let ext_thpt = report.final_throughput(ext_idx, 30);
        // The external source keeps (almost) its full 7.5 Mbps.
        assert!(ext_thpt > 7.0, "external throughput {ext_thpt}");
        // And the EMPoWER flow still exploits the residual WiFi airtime
        // on top of the PLC route (strictly more than PLC-only, strictly
        // less than the uncontended 16.7 optimum).
        let emp = report.final_throughput(1, 10);
        assert!(emp > 10.5, "EMPoWER should still use residual WiFi: {emp}");
        assert!(emp < 15.0, "but cannot take what the external node holds: {emp}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, routes) = fig1_sim();
            let src = routes[0].source(sim.network());
            let dst = routes[0].destination(sim.network());
            sim.add_flow(FlowSpecSim::saturated(src, dst, routes, 30.0));
            let r = sim.run(30.0);
            (r.flows[0].delivered_bits, r.flows[0].sent_frames)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mac_never_violates_interference() {
        // White-box check: during a busy run, at no point are two
        // interfering links on the air together. We verify post-hoc via the
        // invariant embedded in try_start by running with debug assertions
        // and asserting global progress.
        let (mut sim, routes) = fig1_sim();
        let src = routes[0].source(sim.network());
        let dst = routes[0].destination(sim.network());
        sim.add_flow(FlowSpecSim::saturated(src, dst, routes, 20.0));
        let report = sim.run(20.0);
        assert!(report.flows[0].delivered_bits > 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::{Trace, TraceEvent};
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    #[test]
    fn trace_records_the_life_of_a_flow() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let mut sim = Simulation::new(s.net, imap, SimConfig::default());
        sim.add_flow(FlowSpecSim::saturated(s.gateway, s.client, vec![route1], 10.0));
        sim.attach_trace(Trace::bounded(50_000));
        let report = sim.run(10.0);
        let trace = sim.take_trace().expect("trace attached");
        let events = trace.events();
        assert!(!events.is_empty());
        // Conservation: every Deliver seq was first seen in a TxStart.
        let started: std::collections::HashSet<u32> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TxStart { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        let mut delivered = 0u64;
        for e in events {
            if let TraceEvent::Deliver { seq, .. } = e {
                assert!(started.contains(seq), "delivered seq {seq} never transmitted");
                delivered += 1;
            }
        }
        let frames = report.flows[0].delivered_bits / SimConfig::default().frame_bits;
        assert_eq!(delivered, frames, "trace deliveries match stats");
    }

    #[test]
    fn trace_airtime_respects_wall_clock() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let wifi_ab = s.wifi_ab;
        let mut sim = Simulation::new(s.net, imap, SimConfig::default());
        sim.add_flow(FlowSpecSim::saturated(s.gateway, s.client, vec![route2], 20.0));
        sim.attach_trace(Trace::new());
        sim.run(20.0);
        let trace = sim.take_trace().unwrap();
        let airtime = trace.airtime_on(wifi_ab);
        assert!(airtime > 0.0);
        assert!(airtime <= 20.0, "airtime {airtime} exceeds the run length");
    }
}

#[cfg(test)]
mod tcp_margin_tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    /// §6.4: the δ = 0.3 budget applies exactly in the contention domain of
    /// a TCP receiver — UDP flows sharing that domain keep their airtime
    /// sum at ≤ 0.7, leaving TCP its headroom.
    #[test]
    fn udp_in_a_tcp_domain_respects_the_tcp_margin() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let wifi_ab = Path::new(&s.net, vec![s.wifi_ab]).unwrap();
        let wifi_bc = Path::new(&s.net, vec![s.wifi_bc]).unwrap();
        let mut sim = Simulation::new(s.net.clone(), imap.clone(), SimConfig::default());
        // UDP flow on wifi a→b; TCP flow on wifi b→c: same WiFi domain.
        let udp = sim.add_flow(FlowSpecSim::saturated(s.gateway, s.extender, vec![wifi_ab], 300.0));
        sim.add_flow(FlowSpecSim {
            src: s.extender,
            dst: s.client,
            routes: vec![wifi_bc],
            use_cc: true,
            open_loop_rates: Vec::new(),
            pattern: TrafficPattern::Tcp { start: 0.0, stop: 300.0, size_bytes: 0 },
            delay_equalization: true,
        });
        let report = sim.run(300.0);
        let t_udp = report.final_throughput(udp, 20);
        let t_tcp = report.final_throughput(1, 20);
        // Both progress, and the joint WiFi airtime honours the 0.7 budget
        // the TCP piggyback imposes on the whole domain.
        let airtime = t_udp / 15.0 + t_tcp / 30.0;
        assert!(t_udp > 2.0 && t_tcp > 2.0, "udp {t_udp}, tcp {t_tcp}");
        assert!(airtime < 0.76, "domain airtime {airtime:.2} exceeds the TCP budget");
    }

    /// Without any TCP flow the default margin applies (airtime → ~1).
    #[test]
    fn udp_alone_keeps_the_default_margin() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let wifi_ab = Path::new(&s.net, vec![s.wifi_ab]).unwrap();
        let mut sim = Simulation::new(s.net.clone(), imap, SimConfig::default());
        let udp = sim.add_flow(FlowSpecSim::saturated(s.gateway, s.extender, vec![wifi_ab], 200.0));
        let report = sim.run(200.0);
        let t_udp = report.final_throughput(udp, 20);
        assert!(t_udp > 13.0, "no TCP around: full budget, got {t_udp}");
    }
}
