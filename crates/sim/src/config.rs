//! Simulation parameters.

/// Global knobs of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Control slot (ACK / price-broadcast interval), seconds. 0.1 s in the
    /// paper's implementation.
    pub slot_secs: f64,
    /// Frame size on the wire, bits. Defaults to 12 000 B (96 000 bits) —
    /// an aggregated burst; see the crate docs.
    pub frame_bits: u64,
    /// Per-link queue capacity, frames (drop-tail beyond).
    pub queue_frames: usize,
    /// Congestion-control constraint margin `δ` (Eq. (3)).
    pub delta: f64,
    /// The TCP-coexistence margin (§6.4): every link whose contention
    /// domain contains a node currently receiving TCP traffic uses
    /// `max(delta, tcp_delta)` instead of `delta`. The flag travels
    /// piggybacked on the price broadcasts, so the tightened budget applies
    /// exactly where the paper says it should — "only the nodes in the
    /// contention domain of a TCP flow".
    pub tcp_delta: f64,
    /// Step-size/gain configuration forwarded to the flow controllers.
    pub cc: empower_cc::CcConfig,
    /// Relative std-dev of the multiplicative error applied to the link
    /// costs the *control plane* sees (capacity mis-estimation, §6.1).
    /// 0 = perfect traffic-based estimation.
    pub estimation_rel_std: f64,
    /// EWMA factor for the per-link airtime-demand measurement (1.0 = no
    /// smoothing). Per-slot demand is frame-quantized; smoothing keeps the
    /// γ update's positive-part recursion from rectifying the noise into a
    /// persistent price bias.
    pub demand_ewma: f64,
    /// CSMA saturation rolloff: when a link's interference domain is
    /// oversubscribed (airtime demand `y > 1`), every transmission in it
    /// takes `1 + saturation_penalty · (y − 1)` times longer — the airtime
    /// real CSMA/CA wastes on collisions and back-off beyond saturation.
    /// Congestion-controlled flows keep `y ≤ 1 − δ` and never pay this;
    /// the w/o-CC schemes that over-drive shared mediums do (this is what
    /// makes open-loop injection genuinely costly, as on the paper's
    /// hardware testbed).
    pub saturation_penalty: f64,
    /// Master seed for all randomized decisions (route sampling, estimation
    /// noise, workload arrivals).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        let slot_secs = 0.1;
        SimConfig {
            slot_secs,
            frame_bits: 96_000,
            queue_frames: 100,
            delta: 0.0,
            tcp_delta: 0.3,
            cc: empower_cc::CcConfig::default(),
            estimation_rel_std: 0.0,
            demand_ewma: 0.25,
            saturation_penalty: 0.8,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// Applies the margin to the embedded controller config (kept in one
    /// place so `delta` cannot diverge between admission and pricing).
    pub fn cc_config(&self) -> empower_cc::CcConfig {
        empower_cc::CcConfig { delta: self.delta, ..self.cc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimConfig::default();
        assert_eq!(c.slot_secs, 0.1);
        assert_eq!(c.cc.alpha, 0.02);
        assert_eq!(c.delta, 0.0);
    }

    #[test]
    fn cc_config_carries_the_margin() {
        let c = SimConfig { delta: 0.3, ..Default::default() };
        assert_eq!(c.cc_config().delta, 0.3);
        assert_eq!(c.cc_config().alpha, c.cc.alpha);
    }
}
