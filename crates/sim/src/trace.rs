//! Packet-level event tracing.
//!
//! The simulator can record a structured trace of everything that happens
//! on the wire — the simulation-world analogue of the `--pcap` dumps the
//! Click implementation produced. Traces serialize to JSON lines for
//! offline analysis and are the raw material for the time-series figures.

use empower_model::LinkId;
use empower_telemetry::Json;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A frame started transmitting on a link.
    TxStart { t: f64, link: u32, flow: usize, seq: u32, bits: u64 },
    /// A frame finished transmitting and was handed to the next node.
    TxEnd { t: f64, link: u32, flow: usize, seq: u32 },
    /// A frame was dropped (full queue, dead link, admission).
    Drop { t: f64, flow: usize, seq: u32, where_: DropSite },
    /// The destination delivered a frame in order to the upper layer.
    Deliver { t: f64, flow: usize, seq: u32 },
    /// The reorder buffer declared a sequence number lost.
    DeclaredLost { t: f64, flow: usize, seq: u32 },
    /// A link's capacity changed (failure injection).
    LinkChange { t: f64, link: u32, capacity_mbps: f64 },
}

/// Where a drop happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropSite {
    SourceAdmission,
    QueueOverflow,
    DeadLink,
}

impl DropSite {
    fn label(self) -> &'static str {
        match self {
            DropSite::SourceAdmission => "source_admission",
            DropSite::QueueOverflow => "queue_overflow",
            DropSite::DeadLink => "dead_link",
        }
    }

    fn from_label(s: &str) -> Option<DropSite> {
        Some(match s {
            "source_admission" => DropSite::SourceAdmission,
            "queue_overflow" => DropSite::QueueOverflow,
            "dead_link" => DropSite::DeadLink,
            _ => return None,
        })
    }
}

impl TraceEvent {
    /// Simulated time of the event.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::TxStart { t, .. }
            | TraceEvent::TxEnd { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Deliver { t, .. }
            | TraceEvent::DeclaredLost { t, .. }
            | TraceEvent::LinkChange { t, .. } => *t,
        }
    }

    /// The JSON-line form: an object tagged by `"ev"` with snake_case
    /// variant names (the format the serde-based version produced).
    pub fn to_json(&self) -> Json {
        match self {
            TraceEvent::TxStart { t, link, flow, seq, bits } => Json::obj([
                ("ev", Json::from("tx_start")),
                ("t", Json::Float(*t)),
                ("link", Json::from(*link)),
                ("flow", Json::from(*flow)),
                ("seq", Json::from(*seq)),
                ("bits", Json::from(*bits)),
            ]),
            TraceEvent::TxEnd { t, link, flow, seq } => Json::obj([
                ("ev", Json::from("tx_end")),
                ("t", Json::Float(*t)),
                ("link", Json::from(*link)),
                ("flow", Json::from(*flow)),
                ("seq", Json::from(*seq)),
            ]),
            TraceEvent::Drop { t, flow, seq, where_ } => Json::obj([
                ("ev", Json::from("drop")),
                ("t", Json::Float(*t)),
                ("flow", Json::from(*flow)),
                ("seq", Json::from(*seq)),
                ("where_", Json::from(where_.label())),
            ]),
            TraceEvent::Deliver { t, flow, seq } => Json::obj([
                ("ev", Json::from("deliver")),
                ("t", Json::Float(*t)),
                ("flow", Json::from(*flow)),
                ("seq", Json::from(*seq)),
            ]),
            TraceEvent::DeclaredLost { t, flow, seq } => Json::obj([
                ("ev", Json::from("declared_lost")),
                ("t", Json::Float(*t)),
                ("flow", Json::from(*flow)),
                ("seq", Json::from(*seq)),
            ]),
            TraceEvent::LinkChange { t, link, capacity_mbps } => Json::obj([
                ("ev", Json::from("link_change")),
                ("t", Json::Float(*t)),
                ("link", Json::from(*link)),
                ("capacity_mbps", Json::Float(*capacity_mbps)),
            ]),
        }
    }

    /// Parses one JSON-line object back into an event.
    pub fn from_json(v: &Json) -> Option<TraceEvent> {
        let t = v.get("t")?.as_f64()?;
        let flow = || v.get("flow")?.as_u64().map(|x| x as usize);
        let seq = || v.get("seq")?.as_u64().map(|x| x as u32);
        let link = || v.get("link")?.as_u64().map(|x| x as u32);
        Some(match v.get("ev")?.as_str()? {
            "tx_start" => TraceEvent::TxStart {
                t,
                link: link()?,
                flow: flow()?,
                seq: seq()?,
                bits: v.get("bits")?.as_u64()?,
            },
            "tx_end" => TraceEvent::TxEnd { t, link: link()?, flow: flow()?, seq: seq()? },
            "drop" => TraceEvent::Drop {
                t,
                flow: flow()?,
                seq: seq()?,
                where_: DropSite::from_label(v.get("where_")?.as_str()?)?,
            },
            "deliver" => TraceEvent::Deliver { t, flow: flow()?, seq: seq()? },
            "declared_lost" => TraceEvent::DeclaredLost { t, flow: flow()?, seq: seq()? },
            "link_change" => TraceEvent::LinkChange {
                t,
                link: link()?,
                capacity_mbps: v.get("capacity_mbps")?.as_f64()?,
            },
            _ => return None,
        })
    }
}

/// An in-memory trace sink with optional size bound.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Hard cap to keep long runs bounded; oldest events are NOT evicted —
    /// recording simply stops (the interesting part of a trace is usually
    /// its beginning, and an explicit cap beats silent memory blow-up).
    cap: Option<usize>,
    truncated: bool,
}

impl Trace {
    /// Unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Trace that stops recording after `cap` events.
    pub fn bounded(cap: usize) -> Self {
        Trace { cap: Some(cap), ..Default::default() }
    }

    /// Records one event.
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(cap) = self.cap {
            if self.events.len() >= cap {
                self.truncated = true;
                return;
            }
        }
        self.events.push(event);
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if the cap was hit.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The configured cap, if any.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Serializes to JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Serializes to JSON lines in **canonical order**: events stably
    /// sorted by `(time, rendered line)`. Equal-time events from
    /// independent interference atoms have no defined relative order in a
    /// single event loop (it depends on queue insertion history), so the
    /// sharded engine emits canonical traces and the cross-engine gates
    /// compare both sides' canonical renderings.
    pub fn canonical_jsonl(&self) -> String {
        let mut lines: Vec<(u64, String)> =
            self.events.iter().map(|e| (e.time().to_bits(), e.to_json().to_string())).collect();
        lines.sort();
        let mut out = String::new();
        for (_, l) in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Filters events touching one flow.
    pub fn for_flow(&self, flow: usize) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::TxStart { flow: f, .. }
                | TraceEvent::TxEnd { flow: f, .. }
                | TraceEvent::Drop { flow: f, .. }
                | TraceEvent::Deliver { flow: f, .. }
                | TraceEvent::DeclaredLost { flow: f, .. } => *f == flow,
                TraceEvent::LinkChange { .. } => false,
            })
            .collect()
    }

    /// Airtime actually consumed on `link` over the trace, seconds
    /// (TxStart→TxEnd pairing; unpaired starts are ignored).
    pub fn airtime_on(&self, link: LinkId) -> f64 {
        let mut started: Option<f64> = None;
        let mut total = 0.0;
        for e in &self.events {
            match e {
                TraceEvent::TxStart { t, link: l, .. } if *l == link.0 => started = Some(*t),
                TraceEvent::TxEnd { t, link: l, .. } if *l == link.0 => {
                    if let Some(s) = started.take() {
                        total += t - s;
                    }
                }
                _ => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips() {
        let mut t = Trace::new();
        t.push(TraceEvent::TxStart { t: 0.5, link: 3, flow: 0, seq: 7, bits: 96_000 });
        t.push(TraceEvent::Deliver { t: 0.6, flow: 0, seq: 7 });
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let back = TraceEvent::from_json(&Json::parse(lines[0]).unwrap()).unwrap();
        assert_eq!(back, t.events()[0]);
    }

    #[test]
    fn bounded_trace_stops_not_evicts() {
        let mut t = Trace::bounded(2);
        for seq in 0..5 {
            t.push(TraceEvent::Deliver { t: 0.0, flow: 0, seq });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.is_truncated());
        // The FIRST events are kept.
        assert!(matches!(t.events()[0], TraceEvent::Deliver { seq: 0, .. }));
    }

    #[test]
    fn flow_filter_and_airtime() {
        let mut t = Trace::new();
        t.push(TraceEvent::TxStart { t: 1.0, link: 2, flow: 0, seq: 0, bits: 10 });
        t.push(TraceEvent::TxEnd { t: 1.25, link: 2, flow: 0, seq: 0 });
        t.push(TraceEvent::TxStart { t: 2.0, link: 2, flow: 1, seq: 0, bits: 10 });
        t.push(TraceEvent::TxEnd { t: 2.5, link: 2, flow: 1, seq: 0 });
        t.push(TraceEvent::LinkChange { t: 3.0, link: 2, capacity_mbps: 0.0 });
        assert_eq!(t.for_flow(0).len(), 2);
        assert_eq!(t.for_flow(1).len(), 2);
        assert!((t.airtime_on(LinkId(2)) - 0.75).abs() < 1e-12);
    }
}
