//! The sharded simulator's persistent worker pool.
//!
//! [`crate::ShardedSimulation`] dispatches one job per used shard per
//! `execute()`. Routing those jobs through one process-wide
//! [`WorkerPool`] — instead of spawning scoped threads per run — amortizes
//! thread spawn/join and lets each worker thread keep a [`ShardArena`]
//! (shard-view extraction scratch) warm across runs, which is what lets
//! `bench_sim`'s scale curve and the scenario corpus gates pay the
//! threading cost once instead of per run.
//!
//! `EMPOWER_SIM_POOL` selects the execution mode per batch:
//!
//! * unset — the pool, sized to `std::thread::available_parallelism()`;
//! * `N > 0` — the pool, sized to `N` threads (the size is fixed at the
//!   first pooled batch of the process; later values select pooled mode
//!   but cannot resize it);
//! * `0` or `off` — no threads: jobs run inline on the calling thread, in
//!   submission order, with a fresh arena.
//!
//! Results are byte-identical in every mode — batch outputs are slotted by
//! submission index, never by completion order — so the knob is purely an
//! operational choice; the determinism smoke tests toggle it to prove
//! exactly that.

use std::sync::OnceLock;

use empower_exec::WorkerPool;
use empower_model::ViewScratch;

/// Per-worker-thread arena: scratch state reused by every shard job the
/// thread ever runs.
#[derive(Default)]
pub(crate) struct ShardArena {
    /// Dense global→local maps for shard-view extraction.
    pub view_scratch: ViewScratch,
}

static POOL: OnceLock<WorkerPool<ShardArena>> = OnceLock::new();

fn pool_threads_from_env(raw: Option<&str>) -> Option<usize> {
    match raw {
        Some("off") | Some("0") => None,
        Some(v) => Some(v.parse().ok().filter(|&n| n > 0).unwrap_or_else(default_threads)),
        None => Some(default_threads()),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs one batch of shard jobs and returns their results in submission
/// order — on the process-wide pool, or inline when `EMPOWER_SIM_POOL` is
/// `0`/`off`.
pub(crate) fn run_shard_batch<R, T>(tasks: Vec<T>) -> Vec<R>
where
    R: Send + 'static,
    T: FnOnce(&mut ShardArena) -> R + Send + 'static,
{
    let raw = std::env::var("EMPOWER_SIM_POOL").ok();
    match pool_threads_from_env(raw.as_deref()) {
        Some(threads) => {
            POOL.get_or_init(|| WorkerPool::new(threads, ShardArena::default)).run_batch(tasks)
        }
        None => {
            let mut arena = ShardArena::default();
            tasks.into_iter().map(|t| t(&mut arena)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_selects_modes() {
        assert_eq!(pool_threads_from_env(Some("off")), None);
        assert_eq!(pool_threads_from_env(Some("0")), None);
        assert_eq!(pool_threads_from_env(Some("3")), Some(3));
        assert!(pool_threads_from_env(None).is_some_and(|n| n >= 1));
        // Garbage falls back to the default size rather than erroring.
        assert!(pool_threads_from_env(Some("lots")).is_some_and(|n| n >= 1));
    }

    #[test]
    fn inline_and_pooled_batches_agree() {
        let tasks = || (0..9u64).map(|i| move |_: &mut ShardArena| i * i).collect::<Vec<_>>();
        let mut inline_arena = ShardArena::default();
        let inline: Vec<u64> = tasks().into_iter().map(|t| t(&mut inline_arena)).collect();
        let pooled = run_shard_batch(tasks());
        assert_eq!(inline, pooled);
    }
}
