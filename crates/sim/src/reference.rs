//! The retained pre-optimization engine: a verbatim copy of the
//! simulator as it stood before the zero-allocation hot-path rework
//! (binary-heap event queue, per-frame `domain(link)` slice scans and
//! `.to_vec()` clones, by-value `SimPacket` queues, per-tick scratch
//! allocations).
//!
//! [`ReferenceSimulation`] is the correctness oracle for
//! [`crate::Simulation`]: the equivalence corpus
//! (`crates/sim/tests/equivalence.rs`) runs both engines over ≥ 20 seeded
//! scenarios and requires byte-identical `SimReport`s, traces and
//! telemetry manifests. It is also the baseline `bench_sim` measures the
//! optimized engine against, so it carries the same deterministic
//! [`SimPerfStats`] work counters (instrumented at the allocation sites
//! the rework removed).
//!
//! Keep this file semantically frozen — fix bugs in both engines or in
//! neither. The forwarding-graph redesign deprecated the monolithic
//! datapath entry points this oracle is built on; the frozen copy keeps
//! using them on purpose.
#![allow(deprecated)]

use std::collections::{BTreeMap, VecDeque};

use empower_cc::{FlowController, LinkPriceState, PriceBroadcast, ProportionalFair};
use empower_datapath::{
    AckCollector, DelayEqConfig, DelayEqualizer, EmpowerHeader, IfaceId, IfaceRegistry,
    ReorderBuffer, ReorderConfig, ReorderEvent, RouteChoice, RouteScheduler, SchedulerConfig,
    SourceRoute,
};
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;
use empower_model::rng::{exponential, normal, stream_seed};

use crate::engine::{STREAM_FLOW, STREAM_LINK};
use empower_model::{InterferenceMap, LinkId, Network, NodeId};

use empower_telemetry::{Counter, Telemetry};

use crate::config::SimConfig;
use crate::event::{Event, ReferenceEventQueue};
use crate::flow::{FlowSpecSim, TrafficPattern};
use crate::metrics::EngineCounters;
use crate::packet::{PacketKind, SimPacket};
use crate::perf::SimPerfStats;
use crate::stats::{FlowStats, SimReport};
use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
use crate::trace::{DropSite, Trace, TraceEvent};

/// One flow's live state inside the engine.
struct FlowRuntime {
    spec: FlowSpecSim,
    source_routes: Vec<SourceRoute>,
    /// First link of each route (the source's egress).
    first_links: Vec<LinkId>,
    scheduler: RouteScheduler,
    controller: Option<FlowController<ProportionalFair>>,
    reorder: ReorderBuffer,
    acks: AckCollector,
    delay_eq: Option<DelayEqualizer>,
    active: bool,
    /// Remaining frame goal of the current file (None = not a file flow).
    current_file_frames: Option<u64>,
    /// Frames of the current file delivered so far.
    file_frames_delivered: u64,
    /// When the current file's transfer began.
    file_began_at: f64,
    /// Precomputed absolute ready-times of queued files (PoissonFiles).
    pending_files: VecDeque<f64>,
    /// TCP machinery, if this is a TCP flow.
    tcp: Option<TcpFlow>,
    /// Source-side backlog of TCP segments awaiting admission (the tun/tap
    /// → datapath queue of the real implementation). Lets TCP self-clock
    /// instead of losing every burst to the token bucket.
    tcp_backlog: VecDeque<u32>,
    /// Guard so exactly one Emit event is in flight per flow.
    emit_pending: bool,
    /// Emission gate: no packet may be offered before this time (a queued
    /// Poisson file that is not ready yet).
    emission_not_before: f64,
    /// Per-route frame counters (`flow/<f>/route/<r>/frames`).
    route_frames: Vec<Counter>,
    /// ACK-cadence counter (`flow/<f>/acks_sent`).
    acks_sent: Counter,
}

struct TcpFlow {
    sender: TcpSender,
    receiver: TcpReceiver,
    /// Map wire sequence → TCP segment id at the destination.
    wire_to_tcp: BTreeMap<u32, u32>,
    /// One-way ACK-path delay, seconds.
    ack_delay: f64,
    /// Time of the currently scheduled RTO check (stale events ignored).
    rto_check_at: Option<f64>,
}

/// The pre-optimization simulator (see the module docs).
pub struct ReferenceSimulation {
    net: Network,
    imap: InterferenceMap,
    reg: IfaceRegistry,
    cfg: SimConfig,
    /// Per-flow random streams — same `(seed, tag, index)` derivation as
    /// the optimized engine, so the two draw bit-identical sequences.
    flow_rngs: Vec<StdRng>,
    /// Per-link random streams (estimation noise).
    link_rngs: Vec<StdRng>,
    events: ReferenceEventQueue,
    now: f64,
    /// Per-link FIFO queues.
    queues: Vec<VecDeque<SimPacket>>,
    /// Frame currently on the air per link.
    busy: Vec<Option<SimPacket>>,
    last_start: Vec<f64>,
    /// Bits enqueued per link since the last control tick (demand).
    demand_bits: Vec<f64>,
    /// EWMA-smoothed per-link airtime demand (see the optimized engine for
    /// the rationale).
    last_demand: Vec<f64>,
    /// Slow-EWMA demand driving the saturation penalty.
    penalty_demand: Vec<f64>,
    price_states: Vec<LinkPriceState>,
    broadcasts: Vec<PriceBroadcast>,
    flows: Vec<FlowRuntime>,
    stats: Vec<FlowStats>,
    ticks: u64,
    /// Flows whose FlowStart event has fired.
    started_flows: usize,
    /// Capacity each link had when a node crash took it down (indexed by
    /// link): restored on node recovery, `None` while the link is healthy.
    crash_saved: Vec<Option<f64>>,
    /// Whether the initial ControlTick has been scheduled.
    control_started: bool,
    /// Optional packet-level trace sink.
    trace: Option<Trace>,
    /// Telemetry counter bundle (all no-ops until a registry is attached).
    etel: EngineCounters,
    /// Deterministic hot-path work counters.
    perf: SimPerfStats,
}

impl ReferenceSimulation {
    /// Creates an empty simulation over `net`.
    pub fn new(net: Network, imap: InterferenceMap, cfg: SimConfig) -> Self {
        let reg = IfaceRegistry::for_network(&net);
        let l = net.link_count();
        let price_states =
            net.nodes().iter().map(|n| LinkPriceState::new(&net, &imap, n.id)).collect();
        let link_rngs = (0..l)
            .map(|i| StdRng::seed_from_u64(stream_seed(cfg.seed, STREAM_LINK, i as u64)))
            .collect();
        ReferenceSimulation {
            reg,
            queues: vec![VecDeque::new(); l],
            busy: vec![None; l],
            last_start: vec![-1.0; l],
            demand_bits: vec![0.0; l],
            last_demand: vec![0.0; l],
            penalty_demand: vec![0.0; l],
            price_states,
            broadcasts: Vec::new(),
            flows: Vec::new(),
            stats: Vec::new(),
            ticks: 0,
            started_flows: 0,
            crash_saved: vec![None; l],
            control_started: false,
            trace: None,
            etel: EngineCounters::disabled(l),
            perf: SimPerfStats::default(),
            events: ReferenceEventQueue::new(),
            now: 0.0,
            net,
            imap,
            cfg,
            flow_rngs: Vec::new(),
            link_rngs,
        }
    }

    /// Read access to the network (capacities may change via failures).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The deterministic work counters accumulated so far.
    pub fn perf_stats(&self) -> SimPerfStats {
        self.perf
    }

    /// Attaches a packet-level trace sink (e.g. `Trace::bounded(100_000)`).
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// Attaches a telemetry registry (see [`crate::Simulation::attach_telemetry`]).
    pub fn attach_telemetry(&mut self, tele: Telemetry) {
        let ids: Vec<u32> = (0..self.net.link_count() as u32).collect();
        self.etel = EngineCounters::attach(tele, &ids);
        for f in 0..self.flows.len() {
            let routes = self.flows[f].spec.routes.len();
            self.flows[f].route_frames = self.etel.flow_route_counters(f, routes);
            self.flows[f].acks_sent = self.etel.flow_ack_counter(f);
        }
    }

    /// The attached telemetry handle (disabled if none was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.etel.tele
    }

    /// Detaches and returns the trace recorded so far.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Resolves a path into a wire source route, or `None` when a hop's
    /// receiving interface is gone (node removed mid-run) or the path does
    /// not fit the 6-hop header — callers skip such routes instead of
    /// panicking.
    fn resolve_source_route(&self, p: &empower_model::Path) -> Option<SourceRoute> {
        let mut hops: Vec<IfaceId> = Vec::with_capacity(p.links().len());
        for &l in p.links() {
            let link = self.net.try_link(l)?;
            hops.push(self.reg.id_of(link.to, link.medium)?);
        }
        SourceRoute::new(&hops).ok()
    }

    /// Registers a flow; returns its index. Routes that cannot be resolved
    /// (missing interface, more than 6 hops) are skipped.
    ///
    /// # Panics
    /// Panics if the spec has no usable routes, or an open-loop flow lacks
    /// rates.
    pub fn add_flow(&mut self, mut spec: FlowSpecSim) -> usize {
        assert!(!spec.routes.is_empty(), "flow has no routes");
        assert!(
            !self.control_started,
            "flows must be registered before the simulation starts \
             (the control-tick chain may already have drained)"
        );
        if !spec.use_cc {
            assert_eq!(
                spec.open_loop_rates.len(),
                spec.routes.len(),
                "open-loop flows need one rate per route"
            );
        }
        let resolved: Vec<Option<SourceRoute>> =
            spec.routes.iter().map(|p| self.resolve_source_route(p)).collect();
        if resolved.iter().any(Option::is_none) {
            self.etel.route_errors.inc();
            let keep: Vec<bool> = resolved.iter().map(Option::is_some).collect();
            let mut i = 0;
            spec.routes.retain(|_| {
                let keep_it = keep.get(i).copied().unwrap_or(false);
                i += 1;
                keep_it
            });
            if !spec.use_cc {
                let mut i = 0;
                spec.open_loop_rates.retain(|_| {
                    let keep_it = keep.get(i).copied().unwrap_or(false);
                    i += 1;
                    keep_it
                });
            }
        }
        let source_routes: Vec<SourceRoute> = resolved.into_iter().flatten().collect();
        assert!(!spec.routes.is_empty(), "no route of the flow could be resolved");
        let first_links: Vec<LinkId> = spec.routes.iter().map(|p| p.links()[0]).collect();
        let mut scheduler = SchedulerConfig::for_routes(spec.routes.len())
            .bucket_depth_mb(4.0 * self.cfg.frame_bits as f64 / 1e6)
            .build();
        let controller = if spec.use_cc {
            let caps: Vec<f64> =
                spec.routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
            let max_hops = spec.routes.iter().map(|p| p.hop_count()).max().unwrap_or(1);
            Some(FlowController::new(ProportionalFair, self.cfg.cc_config(), caps, max_hops))
        } else {
            scheduler.set_rates(&spec.open_loop_rates);
            None
        };
        let tcp = spec.pattern.is_tcp().then(|| {
            let total = match spec.pattern {
                TrafficPattern::Tcp { size_bytes: 0, .. } => None,
                TrafficPattern::Tcp { size_bytes, .. } => {
                    Some(size_bytes * 8 / self.cfg.frame_bits + 1)
                }
                _ => unreachable!(),
            };
            // ACK path: the reverse of route 0, small frames, lightly
            // loaded prioritized queues → per-hop store-and-forward of a
            // 40 B segment plus 1 ms of MAC access per hop.
            let ack_delay: f64 = spec.routes[0]
                .links()
                .iter()
                .map(|&l| {
                    let link = self.net.link(l);
                    0.001 + 320.0 / (link.capacity_mbps.max(1.0) * 1e6)
                })
                .sum();
            TcpFlow {
                sender: TcpSender::new(TcpConfig::default(), total),
                receiver: TcpReceiver::new(),
                wire_to_tcp: BTreeMap::new(),
                ack_delay,
                rto_check_at: None,
            }
        });
        let route_count = spec.routes.len();
        let delay_eq =
            spec.delay_equalization.then(|| DelayEqConfig::for_routes(route_count).build());
        let start = spec.pattern.start_time();
        let stop = spec.pattern.stop_time();
        let idx = self.flows.len();
        self.flows.push(FlowRuntime {
            spec,
            source_routes,
            first_links,
            scheduler,
            controller,
            reorder: ReorderConfig::for_routes(route_count).build(),
            acks: AckCollector::new(route_count),
            delay_eq,
            active: false,
            current_file_frames: None,
            file_frames_delivered: 0,
            file_began_at: 0.0,
            pending_files: VecDeque::new(),
            tcp,
            tcp_backlog: VecDeque::new(),
            emit_pending: false,
            emission_not_before: 0.0,
            route_frames: self.etel.flow_route_counters(idx, route_count),
            acks_sent: self.etel.flow_ack_counter(idx),
        });
        self.flow_rngs.push(StdRng::seed_from_u64(stream_seed(
            self.cfg.seed,
            STREAM_FLOW,
            idx as u64,
        )));
        self.stats.push(FlowStats { started_at: start, ..Default::default() });
        self.events.push(start, Event::FlowStart { flow: idx as u32 });
        if let Some(stop) = stop {
            self.events.push(stop, Event::FlowStop { flow: idx as u32 });
        }
        idx
    }

    /// Schedules a capacity change (failure injection: 0 = link death).
    pub fn schedule_link_change(&mut self, at: f64, link: LinkId, capacity_mbps: f64) {
        self.events.push(at, Event::LinkChange { link, capacity_mbps });
    }

    /// Schedules a node crash (`up = false`) or recovery (`up = true`).
    pub fn schedule_node_change(&mut self, at: f64, node: NodeId, up: bool) {
        self.events.push(at, Event::NodeChange { node, up });
    }

    /// Replaces a flow's routes mid-run (see [`crate::Simulation::replace_routes`]).
    ///
    /// # Panics
    /// Panics if `routes` is empty or a route does not match the flow's
    /// endpoints.
    pub fn replace_routes(&mut self, flow: usize, routes: Vec<empower_model::Path>) -> usize {
        assert!(!routes.is_empty(), "a flow needs at least one route");
        for p in &routes {
            assert_eq!(p.source(&self.net), self.flows[flow].spec.src);
            assert_eq!(p.destination(&self.net), self.flows[flow].spec.dst);
        }
        let mut source_routes: Vec<SourceRoute> = Vec::with_capacity(routes.len());
        let routes: Vec<empower_model::Path> = routes
            .into_iter()
            .filter(|p| match self.resolve_source_route(p) {
                Some(sr) => {
                    source_routes.push(sr);
                    true
                }
                None => {
                    self.etel.route_errors.inc();
                    false
                }
            })
            .collect();
        if routes.is_empty() {
            self.etel.tele.event("sim", "route_replace_failed", &[("flow", flow.into())]);
            return 0;
        }
        let n = routes.len();
        let caps: Vec<f64> = routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
        let max_hops = routes.iter().map(|p| p.hop_count()).max().unwrap_or(1);
        let fl = &mut self.flows[flow];
        fl.first_links = routes.iter().map(|p| p.links()[0]).collect();
        fl.source_routes = source_routes;
        fl.spec.routes = routes;
        fl.scheduler.reset_routes(n);
        if fl.controller.is_some() {
            fl.controller =
                Some(FlowController::new(ProportionalFair, self.cfg.cc_config(), caps, max_hops));
        } else {
            // Open-loop flows keep driving each new route at its standalone
            // capacity.
            fl.spec.open_loop_rates =
                fl.spec.routes.iter().map(|p| p.capacity(&self.net, &self.imap)).collect();
            fl.scheduler.set_rates(&fl.spec.open_loop_rates);
        }
        fl.reorder.reset_routes(n);
        fl.acks = AckCollector::new(n);
        if fl.delay_eq.is_some() {
            fl.delay_eq = Some(DelayEqConfig::for_routes(n).build());
        }
        fl.route_frames = self.etel.flow_route_counters(flow, n);
        self.etel.tele.event(
            "sim",
            "route_replace",
            &[("flow", flow.into()), ("routes", n.into())],
        );
        // New route columns in the rate series start now, padded with zeros
        // for the elapsed samples.
        let series = &mut self.stats[flow].rate_series;
        let len = series.first().map_or(0, Vec::len);
        if series.len() < n {
            series.resize_with(n, || vec![0.0; len]);
        }
        n
    }

    /// Runs until `duration` seconds of simulated time and returns the
    /// report.
    pub fn run(&mut self, duration: f64) -> SimReport {
        self.run_until(duration);
        self.report(duration)
    }

    /// Advances the simulation to time `until` and pauses, leaving all
    /// state intact.
    pub fn run_until(&mut self, until: f64) {
        if !self.control_started {
            self.control_started = true;
            self.events.push(0.0, Event::ControlTick);
        }
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            let Some((at, event)) = self.events.pop() else { break };
            debug_assert!(at + 1e-9 >= self.now, "time went backwards");
            self.now = at;
            self.etel.tele.set_now(at);
            self.perf.events_dispatched += 1;
            self.dispatch(event);
        }
        self.now = self.now.max(until);
    }

    /// The report as of the current simulated time.
    pub fn report(&self, duration: f64) -> SimReport {
        SimReport { flows: self.stats.clone(), duration }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::ControlTick => self.control_tick(),
            Event::Emit { flow } => self.emit(flow as usize),
            Event::TxEnd { link } => self.tx_end(link),
            Event::FlowStart { flow } => self.flow_start(flow as usize),
            Event::FlowStop { flow } => self.flow_stop(flow as usize),
            Event::LinkChange { link, capacity_mbps } => self.link_change(link, capacity_mbps),
            Event::NodeChange { node, up } => self.node_change(node, up),
            Event::Release { flow, route, seq, price, created_at } => {
                self.deliver_to_reorder(
                    flow as usize,
                    route as usize,
                    seq,
                    price as f64,
                    created_at,
                );
            }
            Event::TcpAckArrival { flow, ack_seq, .. } => self.tcp_ack(flow as usize, ack_seq),
            Event::TcpRtoCheck { flow } => self.tcp_rto_check(flow as usize),
        }
    }

    // ------------------------------------------------------------------
    // Applications
    // ------------------------------------------------------------------

    fn flow_start(&mut self, f: usize) {
        self.started_flows += 1;
        self.flows[f].active = true;
        self.etel.tele.event("sim", "flow_start", &[("flow", f.into())]);
        match self.flows[f].spec.pattern {
            TrafficPattern::SaturatedUdp { .. } => self.schedule_emit(f, 0.0),
            TrafficPattern::FileDownload { size_bytes, .. } => {
                self.begin_file(f, size_bytes);
                self.schedule_emit(f, 0.0);
            }
            TrafficPattern::PoissonFiles { count, size_bytes, mean_gap_secs, .. } => {
                // Precompute the Poisson ready-times of the files.
                let mut t = self.now;
                for _ in 0..count {
                    self.flows[f].pending_files.push_back(t);
                    t += exponential(&mut self.flow_rngs[f], mean_gap_secs);
                }
                self.begin_file(f, size_bytes);
                self.flows[f].pending_files.pop_front();
                self.schedule_emit(f, 0.0);
            }
            TrafficPattern::Tcp { .. } => {
                self.tcp_pump(f);
            }
        }
    }

    /// Deactivates flow `f` on its first stop, recording the stop time and
    /// emitting the `flow_stop` hook event (kept in lockstep with the
    /// optimized engine so the equivalence corpus stays byte-identical).
    fn flow_stop(&mut self, f: usize) {
        if !self.flows[f].active {
            return;
        }
        self.flows[f].active = false;
        self.stats[f].stopped_at = self.now;
        self.etel.tele.event("sim", "flow_stop", &[("flow", f.into())]);
    }

    fn begin_file(&mut self, f: usize, size_bytes: u64) {
        let frames = (size_bytes * 8).div_ceil(self.cfg.frame_bits);
        let fl = &mut self.flows[f];
        fl.current_file_frames = Some(frames);
        fl.file_frames_delivered = 0;
        fl.file_began_at = self.now;
    }

    fn schedule_emit(&mut self, f: usize, delay: f64) {
        if !self.flows[f].emit_pending {
            self.flows[f].emit_pending = true;
            self.events.push(self.now + delay, Event::Emit { flow: f as u32 });
        }
    }

    fn emit(&mut self, f: usize) {
        self.flows[f].emit_pending = false;
        if !self.flows[f].active {
            return;
        }
        // A queued file may not be ready yet (Poisson arrivals): a stale
        // Emit event from the previous file's pacing must not start it
        // early.
        let gate = self.flows[f].emission_not_before;
        if self.now + 1e-9 < gate {
            self.schedule_emit(f, gate - self.now);
            return;
        }
        if self.flows[f].spec.pattern.is_tcp() {
            self.tcp_drain(f);
            return;
        }
        // File flows stop offering once the goal is met.
        if self.flows[f]
            .current_file_frames
            .is_some_and(|goal| self.flows[f].file_frames_delivered >= goal)
        {
            return; // completion handling re-arms emission
        }
        let bits = self.cfg.frame_bits;
        let choice = self.flows[f].scheduler.offer(&mut self.flow_rngs[f], self.now, bits);
        match choice {
            RouteChoice::Drop => {
                self.stats[f].dropped_at_source += 1;
                self.etel.drops_source.inc();
            }
            RouteChoice::Route(r) => {
                let seq = self.flows[f].scheduler.next_seq();
                self.send_on_route(f, r, seq, PacketKind::Data, None);
            }
        }
        let rate = self.flows[f].scheduler.total_rate().max(1.0);
        let interval = bits as f64 / 1e6 / rate;
        self.schedule_emit(f, interval);
    }

    /// Builds a frame and enqueues it on the first link of route `r`.
    fn send_on_route(
        &mut self,
        f: usize,
        r: usize,
        wire_seq: u32,
        kind: PacketKind,
        tcp_seq: Option<u32>,
    ) {
        let src_route = self.flows[f].source_routes[r];
        let mut header = EmpowerHeader::new(src_route, wire_seq);
        let first = self.flows[f].first_links[r];
        // The source adds its own price contribution for the first hop.
        let src_node = self.flows[f].spec.src;
        let contribution = self.price_states[src_node.index()].price_contribution(
            &self.net,
            &self.broadcasts,
            first,
        );
        header.add_price(contribution);
        if self.etel.enabled() {
            // Exercise the real 20-byte wire codec on every emitted frame:
            // an encode/decode round-trip failure is a datapath bug the
            // counters must surface (the disabled path skips this).
            self.flows[f].route_frames[r].inc();
            let bytes = header.to_bytes();
            if EmpowerHeader::decode(&mut bytes.as_slice()).is_err() {
                self.etel.header_decode_errors.inc();
            }
        }
        if let (Some(tcp), Some(ts)) = (self.flows[f].tcp.as_mut(), tcp_seq) {
            tcp.wire_to_tcp.insert(wire_seq, ts);
        }
        let pkt = SimPacket {
            header,
            size_bits: self.cfg.frame_bits,
            flow: f,
            route: r,
            created_at: self.now,
            kind,
        };
        self.stats[f].sent_frames += 1;
        self.enqueue_link(first, pkt);
    }

    // ------------------------------------------------------------------
    // MAC
    // ------------------------------------------------------------------

    fn enqueue_link(&mut self, link: LinkId, pkt: SimPacket) {
        let l = link.index();
        // Demand is the *offered* airtime (Eq. (7) measures what flows try
        // to push, which is what the prices must react to), so count the
        // frame even when the queue then drops it.
        self.demand_bits[l] += pkt.size_bits as f64;
        if !self.net.link(link).is_alive() || self.queues[l].len() >= self.cfg.queue_frames {
            self.stats[pkt.flow].dropped_in_network += 1;
            let alive = self.net.link(link).is_alive();
            if alive {
                self.etel.drops_overflow.inc();
            } else {
                self.etel.drops_dead_link.inc();
            }
            if let Some(tr) = self.trace.as_mut() {
                let site = if alive { DropSite::QueueOverflow } else { DropSite::DeadLink };
                tr.push(TraceEvent::Drop {
                    t: self.now,
                    flow: pkt.flow,
                    seq: pkt.header.seq,
                    where_: site,
                });
            }
            return;
        }
        self.queues[l].push_back(pkt);
        self.etel.queue_hwm[l].record_max(self.queues[l].len() as u64);
        self.try_start(link);
    }

    fn can_start(&mut self, link: LinkId) -> bool {
        let l = link.index();
        if self.busy[l].is_some() || self.queues[l].is_empty() || !self.net.link(link).is_alive() {
            return false;
        }
        // Element-wise interference-domain scan with early exit — the work
        // the bitset engine replaces with word ANDs. One probe per element
        // visited.
        let mut probes = 0u64;
        let mut clear = true;
        for &i in self.imap.domain(link) {
            probes += 1;
            if self.busy[i.index()].is_some() {
                clear = false;
                break;
            }
        }
        self.perf.domain_probes += probes;
        clear
    }

    fn try_start(&mut self, link: LinkId) {
        if !self.can_start(link) {
            // A deferral is a backlogged, healthy link that found its
            // contention domain occupied — the CSMA wait the paper's MAC
            // model abstracts into fair sharing.
            let l = link.index();
            if self.busy[l].is_none()
                && !self.queues[l].is_empty()
                && self.net.link(link).is_alive()
            {
                self.etel.mac_deferrals.inc();
            }
            return;
        }
        let l = link.index();
        // `can_start` verified the queue is non-empty.
        let Some(pkt) = self.queues[l].pop_front() else { return };
        self.etel.mac_grants.inc();
        let mut duration = self.net.link(link).tx_time_secs(pkt.size_bits);
        if self.cfg.saturation_penalty > 0.0 {
            // CSMA saturation rolloff (see SimConfig::saturation_penalty):
            // collisions and back-off waste airtime once the domain's
            // offered load exceeds what it can carry.
            let y: f64 =
                self.imap.domain(link).iter().map(|&i| self.penalty_demand[i.index()]).sum();
            // Tolerance band: a controlled flow rides y ≈ 1 − δ (exactly
            // 1.0 when δ = 0) with measurement jitter; only *persistent*
            // overdrive pays (the penalty demand is slow-smoothed).
            if y > 1.1 {
                let base = duration;
                duration *= 1.0 + self.cfg.saturation_penalty * (y - 1.1);
                self.etel.mac_penalty_frames.inc();
                self.etel.mac_penalty_airtime_us.add(((duration - base) * 1e6) as u64);
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::TxStart {
                t: self.now,
                link: link.0,
                flow: pkt.flow,
                seq: pkt.header.seq,
                bits: pkt.size_bits,
            });
        }
        self.busy[l] = Some(pkt);
        self.last_start[l] = self.now;
        self.events.push(self.now + duration, Event::TxEnd { link });
    }

    fn tx_end(&mut self, link: LinkId) {
        let l = link.index();
        // A stale TxEnd: the frame that was on the air got dropped when its
        // link (or an endpoint node) went down mid-transmission.
        let Some(pkt) = self.busy[l].take() else {
            return;
        };
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::TxEnd {
                t: self.now,
                link: link.0,
                flow: pkt.flow,
                seq: pkt.header.seq,
            });
        }
        self.receive(link, pkt);
        // Give the freed medium to the longest-waiting backlogged contender
        // (round-robin-fair CSMA without collisions), then everyone else
        // that still fits.
        self.perf.hot_allocs += 1; // the domain clone below
        let mut candidates: Vec<LinkId> = self.imap.domain(link).to_vec();
        candidates.sort_by(|a, b| {
            self.last_start[a.index()].total_cmp(&self.last_start[b.index()]).then_with(|| a.cmp(b))
        });
        for cand in candidates {
            self.try_start(cand);
        }
    }

    fn receive(&mut self, link: LinkId, mut pkt: SimPacket) {
        let node = self.net.link(link).to;
        let medium = self.net.link(link).medium;
        let Some(arrived_iface) = self.reg.id_of(node, medium) else {
            // The receiving interface vanished (node removal mid-run).
            self.stats[pkt.flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        };
        if pkt.header.route.is_destination(arrived_iface) {
            self.arrive_at_destination(pkt);
            return;
        }
        let Some(next_iface) = pkt.header.route.next_hop_after(arrived_iface) else {
            // Mis-routed (e.g. stale route after failure): drop.
            self.stats[pkt.flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        };
        let Some((nnode, nmedium)) = self.reg.iface_of(next_iface) else {
            self.stats[pkt.flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        };
        let Some(next_link) = self.net.find_link(node, nnode, nmedium).map(|l| l.id) else {
            self.stats[pkt.flow].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        };
        // Forwarding node adds its price contribution (Eq. (9)).
        let contribution = self.price_states[node.index()].price_contribution(
            &self.net,
            &self.broadcasts,
            next_link,
        );
        pkt.header.add_price(contribution);
        self.enqueue_link(next_link, pkt);
    }

    fn arrive_at_destination(&mut self, pkt: SimPacket) {
        let f = pkt.flow;
        let route = pkt.route;
        let seq = pkt.header.seq;
        let price = pkt.header.price as f64;
        let delay = self.now - pkt.created_at;
        // Stale route index (route set shrank mid-flight): the equalizer
        // and reorder state below it no longer have this route's slot.
        if route >= self.flows[f].spec.routes.len() {
            self.stats[f].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        }
        if let Some(eq) = self.flows[f].delay_eq.as_mut() {
            let hold = eq.on_arrival(route, delay);
            if hold > 1e-9 {
                self.events.push(
                    self.now + hold,
                    Event::Release {
                        flow: f as u32,
                        route: route as u16,
                        seq,
                        price: pkt.header.price,
                        created_at: pkt.created_at,
                    },
                );
                return;
            }
        }
        self.deliver_to_reorder(f, route, seq, price, pkt.created_at);
    }

    fn deliver_to_reorder(
        &mut self,
        f: usize,
        route: usize,
        seq: u32,
        price: f64,
        created_at: f64,
    ) {
        // A packet (or delay-equalizer release) launched before a route
        // replacement shrank the flow's route set: its route index no
        // longer exists in the per-route receiver state. Count it as lost
        // in the transient rather than indexing out of bounds.
        if route >= self.flows[f].spec.routes.len() {
            self.stats[f].dropped_in_network += 1;
            self.etel.route_errors.inc();
            return;
        }
        // End-to-end latency sample: source emission to (pre-reorder)
        // arrival at the destination stack, including any delay-equalizer
        // hold that brought us here.
        let delay = self.now - created_at;
        let st = &mut self.stats[f];
        st.delay_sum_secs += delay;
        st.delay_samples += 1;
        if delay > st.delay_max_secs {
            st.delay_max_secs = delay;
        }
        self.flows[f].acks.observe_price(route, price);
        let events = self.flows[f].reorder.accept(route, seq);
        if !events.is_empty() {
            self.etel.reorder_flushes.inc();
            self.perf.hot_allocs += 1; // the reorder result vector
        }
        let mut delivered_now = 0u64;
        let mut tcp_acks: Vec<u32> = Vec::new();
        for ev in events {
            match ev {
                ReorderEvent::Deliver(s) => {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent::Deliver { t: self.now, flow: f, seq: s });
                    }
                    self.flows[f].acks.count_delivery();
                    delivered_now += 1;
                    if let Some(tcp) = self.flows[f].tcp.as_mut() {
                        if let Some(ts) = tcp.wire_to_tcp.remove(&s) {
                            tcp_acks.push(tcp.receiver.on_segment(ts));
                        }
                    }
                }
                ReorderEvent::Lost(s) => {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent::DeclaredLost { t: self.now, flow: f, seq: s });
                    }
                    self.stats[f].declared_lost += 1;
                    self.etel.loss_rule_firings.inc();
                }
            }
        }
        if delivered_now > 0 {
            self.etel.reorder_delivered.add(delivered_now);
            let bits = delivered_now * self.cfg.frame_bits;
            self.stats[f].delivered_bits += bits;
            let bucket = self.now as usize;
            let series = &mut self.stats[f].throughput_series;
            if series.len() <= bucket {
                series.resize(bucket + 1, 0.0);
            }
            series[bucket] += bits as f64 / 1e6;
            self.flows[f].file_frames_delivered += delivered_now;
            self.check_file_completion(f);
        }
        if !tcp_acks.is_empty() {
            self.perf.hot_allocs += 1; // the TCP-ACK scratch vector
        }
        if let Some(tcp) = self.flows[f].tcp.as_ref() {
            let ack_delay = tcp.ack_delay;
            for ack in tcp_acks {
                self.events.push(
                    self.now + ack_delay,
                    Event::TcpAckArrival { flow: f as u32, ack_seq: ack, dup: false },
                );
            }
        }
    }

    fn check_file_completion(&mut self, f: usize) {
        let Some(goal) = self.flows[f].current_file_frames else {
            return;
        };
        if self.flows[f].file_frames_delivered < goal {
            return;
        }
        let took = self.now - self.flows[f].file_began_at;
        self.stats[f].completions.push(took);
        self.etel.tele.event("sim", "file_complete", &[("flow", f.into()), ("secs", took.into())]);
        match self.flows[f].spec.pattern {
            TrafficPattern::PoissonFiles { size_bytes, .. } => {
                if let Some(ready) = self.flows[f].pending_files.pop_front() {
                    let begin_in = (ready - self.now).max(0.0);
                    // Sequential downloads: the next file begins when it is
                    // both ready and the previous one is done. In-flight
                    // frames of the old file carry over.
                    let frames = (size_bytes * 8).div_ceil(self.cfg.frame_bits);
                    let excess = self.flows[f].file_frames_delivered - goal;
                    let fl = &mut self.flows[f];
                    fl.current_file_frames = Some(frames);
                    fl.file_frames_delivered = excess;
                    fl.file_began_at = self.now + begin_in;
                    fl.emission_not_before = self.now + begin_in;
                    self.schedule_emit(f, begin_in);
                } else {
                    self.flow_stop(f);
                    self.flows[f].current_file_frames = None;
                }
            }
            _ => {
                self.flow_stop(f);
                self.flows[f].current_file_frames = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    fn control_tick(&mut self) {
        let slot = self.cfg.slot_secs;
        // 1. Per-link airtime-demand measurement over the last slot, with
        //    optional capacity-estimation error.
        for l in 0..self.net.link_count() {
            let link = self.net.link(LinkId(l as u32));
            let demand = if link.is_alive() {
                self.demand_bits[l] / (link.capacity_mbps * 1e6 * slot)
            } else if self.demand_bits[l] > 0.0 {
                // Traffic offered to a dead link: the capacity estimator
                // notices within ~100 ms (§6.1), and a zero-capacity link
                // under any load is infinitely oversubscribed. Report a
                // mildly saturated demand: enough for prices to drain the
                // route, small enough that γ unwinds quickly on recovery
                // (the γ update (8) decays at most α per slot).
                1.2
            } else {
                0.0
            };
            let noisy = if self.cfg.estimation_rel_std > 0.0 {
                demand * normal(&mut self.link_rngs[l], 1.0, self.cfg.estimation_rel_std).max(0.05)
            } else {
                demand
            };
            let smoothed =
                self.cfg.demand_ewma * noisy + (1.0 - self.cfg.demand_ewma) * self.last_demand[l];
            let owner = link.from;
            self.price_states[owner.index()].set_demand(LinkId(l as u32), smoothed);
            self.last_demand[l] = smoothed;
            self.penalty_demand[l] = 0.05 * noisy + 0.95 * self.penalty_demand[l];
            self.demand_bits[l] = 0.0;
        }
        // 2. TCP piggyback (§6.4): destinations of active TCP flows flag
        //    themselves; the flag rides on their price broadcasts and
        //    tightens the airtime budget across their contention domains.
        self.perf.hot_allocs += 1; // the tcp_nodes scratch vector
        let mut tcp_nodes = vec![false; self.net.node_count()];
        for fl in &self.flows {
            if fl.active && fl.spec.pattern.is_tcp() {
                tcp_nodes[fl.spec.dst.index()] = true;
            }
        }
        for s in self.price_states.iter_mut() {
            s.set_tcp_receiver(tcp_nodes[s.node().index()]);
        }
        // 3. Broadcast, overhear, update duals.
        self.perf.hot_allocs += 1; // the broadcast collect
        let broadcasts: Vec<PriceBroadcast> =
            self.price_states.iter().flat_map(|s| s.make_broadcasts(&self.net)).collect();
        let alpha = self.cfg.cc.alpha;
        let delta = self.cfg.delta;
        let delta_tcp = self.cfg.tcp_delta.max(delta);
        let mut margin_violations = 0usize;
        for s in self.price_states.iter_mut() {
            margin_violations +=
                s.update_gammas_with_tcp_margin(&broadcasts, alpha, delta, delta_tcp);
        }
        self.etel.ctrl_ticks.inc();
        self.etel.cc_price_updates.add(self.net.link_count() as u64);
        self.etel.cc_margin_violations.add(margin_violations as u64);
        // 3. Fresh broadcasts carry the updated γ sums for the coming slot.
        self.perf.hot_allocs += 1; // the second broadcast collect
        self.broadcasts =
            self.price_states.iter().flat_map(|s| s.make_broadcasts(&self.net)).collect();
        // 4. ACKs and controller steps.
        for f in 0..self.flows.len() {
            if self.flows[f].controller.is_none() {
                continue;
            }
            let ack = self.flows[f].acks.maybe_ack(self.now);
            if ack.is_some() {
                self.flows[f].acks_sent.inc();
            }
            let prices: Vec<Option<f64>> = match ack {
                Some(a) => a.route_prices,
                None => {
                    self.perf.hot_allocs += 1; // the no-ack price vector
                    vec![None; self.flows[f].spec.routes.len()]
                }
            };
            let Some(controller) = self.flows[f].controller.as_mut() else { continue };
            let rates = controller.on_ack(&prices);
            self.flows[f].scheduler.set_rates(&rates.per_route);
        }
        // 5. Once per second: sample injected rates.
        let per_sec = (1.0 / slot).round() as u64;
        if self.ticks.is_multiple_of(per_sec) {
            for f in 0..self.flows.len() {
                self.perf.hot_allocs += 1; // the rate snapshot clone
                let rates: Vec<f64> = match self.flows[f].controller.as_ref() {
                    Some(c) => c.rates().to_vec(),
                    None => self.flows[f].spec.open_loop_rates.clone(),
                };
                let series = &mut self.stats[f].rate_series;
                if series.is_empty() {
                    *series = vec![Vec::new(); rates.len()];
                }
                for (r, &x) in rates.iter().enumerate() {
                    series[r].push(if self.flows[f].active { x } else { 0.0 });
                }
            }
        }
        self.ticks += 1;
        // Unconditional re-arm, mirroring the optimized engine: the tick
        // chain must depend only on the caller's horizon, never on global
        // drain state, so sharded runs (DESIGN.md §13) tick identically.
        self.events.push(self.now + slot, Event::ControlTick);
    }

    fn link_change(&mut self, link: LinkId, capacity_mbps: f64) {
        self.etel.tele.event(
            "sim",
            "link_change",
            &[("link", link.0.into()), ("capacity_mbps", capacity_mbps.into())],
        );
        // An explicit capacity change overrides whatever a node crash saved.
        self.crash_saved[link.index()] = None;
        self.apply_capacity(link, capacity_mbps);
    }

    /// Sets a link's capacity mid-run, handling the death/revival edges:
    /// queued and in-flight frames on a dying link are dropped, a reviving
    /// link gets its stale γ dual forgotten so prices restart from fresh
    /// measurements instead of unwinding at α per slot.
    fn apply_capacity(&mut self, link: LinkId, capacity_mbps: f64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::LinkChange { t: self.now, link: link.0, capacity_mbps });
        }
        let was_alive = self.net.link(link).is_alive();
        self.net.set_capacity(link, capacity_mbps);
        let l = link.index();
        if !self.net.link(link).is_alive() {
            // Queued frames on a dead link are lost, and so is the frame on
            // the air (its TxEnd event goes stale and is ignored).
            let in_flight = self.busy[l].take();
            let freed_medium = in_flight.is_some();
            self.perf.hot_allocs += 1; // the lost-frame collect
            let lost: Vec<SimPacket> = self.queues[l].drain(..).chain(in_flight).collect();
            for pkt in lost {
                self.stats[pkt.flow].dropped_in_network += 1;
                self.etel.drops_dead_link.inc();
                if let Some(tr) = self.trace.as_mut() {
                    tr.push(TraceEvent::Drop {
                        t: self.now,
                        flow: pkt.flow,
                        seq: pkt.header.seq,
                        where_: DropSite::DeadLink,
                    });
                }
            }
            if freed_medium {
                // The aborted transmission freed its contention domain.
                self.perf.hot_allocs += 1; // the domain clone below
                for cand in self.imap.domain(link).to_vec() {
                    self.try_start(cand);
                }
            }
        } else {
            if !was_alive {
                // Topology change: the γ this link's owner learned while it
                // was dead (demand-starved or drain-priced) is stale.
                let owner = self.net.link(link).from;
                self.price_states[owner.index()].reset_gamma(link);
            }
            self.try_start(link);
        }
        // Route-capacity clamps in controllers are intentionally NOT
        // updated: the controller adapts through prices, as in the paper
        // (routes are only recomputed on failures, by the caller).
    }

    fn node_change(&mut self, node: NodeId, up: bool) {
        self.etel.tele.event(
            "sim",
            "node_change",
            &[("node", node.index().into()), ("up", up.into())],
        );
        let adjacent: Vec<LinkId> = self
            .net
            .links()
            .iter()
            .filter(|lk| lk.from == node || lk.to == node)
            .map(|lk| lk.id)
            .collect();
        for link in adjacent {
            let l = link.index();
            if up {
                if let Some(cap) = self.crash_saved[l].take() {
                    self.apply_capacity(link, cap);
                }
            } else {
                if self.net.link(link).is_alive() && self.crash_saved[l].is_none() {
                    self.crash_saved[l] = Some(self.net.link(link).capacity_mbps);
                }
                self.apply_capacity(link, 0.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // TCP
    // ------------------------------------------------------------------

    fn tcp_pump(&mut self, f: usize) {
        if !self.flows[f].active {
            return;
        }
        loop {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            let Some((tcp_seq, is_retx)) = tcp.sender.next_to_send() else {
                break;
            };
            tcp.sender.on_sent(tcp_seq, self.now, is_retx);
            // Into the source queue; the drain loop paces admission. A full
            // queue is the §6.4 drop TCP perceives as congestion.
            if self.flows[f].tcp_backlog.len() >= 64 {
                self.stats[f].dropped_at_source += 1;
                self.etel.drops_source.inc();
            } else {
                self.flows[f].tcp_backlog.push_back(tcp_seq);
            }
        }
        self.tcp_drain(f);
        self.tcp_arm_rto(f);
    }

    /// Drains the TCP source queue at the admitted rate.
    fn tcp_drain(&mut self, f: usize) {
        if self.flows[f].tcp_backlog.is_empty() || !self.flows[f].active {
            return;
        }
        let bits = self.cfg.frame_bits;
        let choice = if self.flows[f].spec.use_cc {
            self.flows[f].scheduler.offer(&mut self.flow_rngs[f], self.now, bits)
        } else {
            RouteChoice::Route(0)
        };
        match choice {
            RouteChoice::Drop => {
                // No tokens yet: retry after roughly one frame time at the
                // admitted rate; the segment stays queued.
            }
            RouteChoice::Route(r) => {
                if let Some(tcp_seq) = self.flows[f].tcp_backlog.pop_front() {
                    let wire_seq = self.flows[f].scheduler.next_seq();
                    self.send_on_route(f, r, wire_seq, PacketKind::TcpData, Some(tcp_seq));
                }
            }
        }
        if !self.flows[f].tcp_backlog.is_empty() {
            let rate = self.flows[f].scheduler.total_rate().max(1.0);
            let interval = bits as f64 / 1e6 / rate;
            self.schedule_emit(f, interval);
        }
    }

    fn tcp_arm_rto(&mut self, f: usize) {
        let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
        if tcp.rto_check_at.is_none() {
            let at = self.now + tcp.sender.rto();
            tcp.rto_check_at = Some(at);
            self.events.push(at, Event::TcpRtoCheck { flow: f as u32 });
        }
    }

    fn tcp_ack(&mut self, f: usize, ack_seq: u32) {
        {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            tcp.sender.on_ack(ack_seq, self.now);
            if tcp.sender.done() {
                let elapsed = self.now - self.stats[f].started_at;
                self.stats[f].completions.push(elapsed);
                self.flow_stop(f);
                return;
            }
        }
        self.tcp_pump(f);
    }

    fn tcp_rto_check(&mut self, f: usize) {
        let active = self.flows[f].active;
        let retransmit = {
            let Some(tcp) = self.flows[f].tcp.as_mut() else { return };
            tcp.rto_check_at = None;
            if !active {
                return;
            }
            match tcp.sender.on_rto_check(self.now) {
                Some(next) => {
                    tcp.rto_check_at = Some(next);
                    true
                }
                None => false,
            }
        };
        if retransmit {
            let at = self.flows[f].tcp.as_ref().and_then(|t| t.rto_check_at);
            if let Some(at) = at {
                self.events.push(at, Event::TcpRtoCheck { flow: f as u32 });
            }
            self.tcp_pump(f);
        }
    }
}
