//! The engine's telemetry bundle: every counter the hot path touches is
//! registered once (at [`crate::Simulation::attach_telemetry`] time) and
//! held as a plain handle, so instrumented code performs one branch per
//! emission and zero string work. With no registry attached every handle
//! is a no-op.
//!
//! Naming scheme (see DESIGN.md "Observability"):
//!
//! * `mac/…` — medium access: grants, deferrals, saturation penalty.
//! * `queue/…` + `link/<i>/queue_hwm` — per-link FIFO behaviour.
//! * `datapath/…` — header codec, reorder buffer, loss rule.
//! * `flow/<f>/…` — per-flow route-choice histogram and ACK cadence.
//! * `cc/…` — distributed price-update machinery.

use empower_telemetry::{Counter, CounterType, Telemetry};

/// All engine-wide counters plus the registry handle. The default
/// (disabled) bundle hands out no-op counters.
pub(crate) struct EngineCounters {
    pub tele: Telemetry,
    /// Frames granted the medium (`mac/grants`).
    pub mac_grants: Counter,
    /// Transmission attempts deferred because the contention domain was
    /// busy (`mac/deferrals`).
    pub mac_deferrals: Counter,
    /// Frames that paid the CSMA saturation penalty (`mac/penalty_frames`).
    pub mac_penalty_frames: Counter,
    /// Extra airtime charged by the saturation penalty, accumulated in
    /// microseconds (`mac/penalty_airtime_us`).
    pub mac_penalty_airtime_us: Counter,
    /// Frames dropped at a full per-link queue (`queue/drops_overflow`).
    pub drops_overflow: Counter,
    /// Frames dropped at a dead link (`queue/drops_dead_link`).
    pub drops_dead_link: Counter,
    /// Frames dropped at the source admission stage
    /// (`source/drops`): token-bucket refusals and TCP backlog overflow.
    pub drops_source: Counter,
    /// Frames that could not be forwarded — stale source route after a
    /// failure, unknown next interface (`datapath/route_errors`).
    pub route_errors: Counter,
    /// Wire-codec round-trip failures on emitted headers
    /// (`datapath/header_decode_errors`).
    pub header_decode_errors: Counter,
    /// Reorder-buffer accepts that released at least one event
    /// (`datapath/reorder_flushes`).
    pub reorder_flushes: Counter,
    /// Frames delivered in order by the reorder buffer
    /// (`datapath/reorder_delivered`).
    pub reorder_delivered: Counter,
    /// All-routes-passed loss-rule firings (`datapath/loss_rule_firings`).
    pub loss_rule_firings: Counter,
    /// γ updates performed across all nodes (`cc/price_updates`).
    pub cc_price_updates: Counter,
    /// (link, slot) pairs whose airtime margin was violated
    /// (`cc/margin_violations`).
    pub cc_margin_violations: Counter,
    /// Control-plane slots executed (`ctrl/ticks`).
    pub ctrl_ticks: Counter,
    /// Per-link queue-depth high-water marks (`link/<i>/queue_hwm`).
    pub queue_hwm: Vec<Counter>,
}

impl EngineCounters {
    /// The disabled bundle: all handles are no-ops (names never escape a
    /// disabled registry, so local indices serve as stand-in ids).
    pub fn disabled(link_count: usize) -> Self {
        let ids: Vec<u32> = (0..link_count as u32).collect();
        Self::build(Telemetry::disabled(), &ids)
    }

    /// Registers every engine counter on `tele`; per-link counters are
    /// named by the links' *global* ids so a shard view's manifest lines
    /// up with the single-threaded engine's.
    pub fn attach(tele: Telemetry, link_gids: &[u32]) -> Self {
        Self::build(tele, link_gids)
    }

    fn build(tele: Telemetry, link_gids: &[u32]) -> Self {
        let c = |name: &str, flavor: CounterType| tele.counter(name, flavor);
        let queue_hwm = link_gids
            .iter()
            .map(|g| tele.counter(format!("link/{g}/queue_hwm"), CounterType::Gauge))
            .collect();
        EngineCounters {
            mac_grants: c("mac/grants", CounterType::Packets),
            mac_deferrals: c("mac/deferrals", CounterType::Packets),
            mac_penalty_frames: c("mac/penalty_frames", CounterType::Packets),
            mac_penalty_airtime_us: c("mac/penalty_airtime_us", CounterType::Gauge),
            drops_overflow: c("queue/drops_overflow", CounterType::Errors),
            drops_dead_link: c("queue/drops_dead_link", CounterType::Errors),
            drops_source: c("source/drops", CounterType::Errors),
            route_errors: c("datapath/route_errors", CounterType::Errors),
            header_decode_errors: c("datapath/header_decode_errors", CounterType::Errors),
            reorder_flushes: c("datapath/reorder_flushes", CounterType::Packets),
            reorder_delivered: c("datapath/reorder_delivered", CounterType::Packets),
            loss_rule_firings: c("datapath/loss_rule_firings", CounterType::Errors),
            cc_price_updates: c("cc/price_updates", CounterType::Packets),
            cc_margin_violations: c("cc/margin_violations", CounterType::Errors),
            ctrl_ticks: c("ctrl/ticks", CounterType::Packets),
            queue_hwm,
            tele,
        }
    }

    /// Whether a live registry is attached.
    pub fn enabled(&self) -> bool {
        self.tele.is_enabled()
    }

    /// Per-route frame counters for flow `f` (`flow/<f>/route/<r>/frames`).
    pub fn flow_route_counters(&self, f: usize, routes: usize) -> Vec<Counter> {
        (0..routes)
            .map(|r| self.tele.counter(format!("flow/{f}/route/{r}/frames"), CounterType::Packets))
            .collect()
    }

    /// The ACK-cadence counter for flow `f` (`flow/<f>/acks_sent`).
    pub fn flow_ack_counter(&self, f: usize) -> Counter {
        self.tele.counter(format!("flow/{f}/acks_sent"), CounterType::Packets)
    }
}
