//! Simulated frames.

use empower_datapath::EmpowerHeader;

/// What a frame carries, beyond the EMPoWER layer-2.5 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Plain UDP-style data.
    Data,
    /// A TCP segment (the sequence number doubles as the TCP segment id).
    TcpData,
}

/// One frame in flight or queued.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// The wire header (source route, accumulated price, sequence number).
    pub header: EmpowerHeader,
    /// Frame size on the wire, bits (header + payload).
    pub size_bits: u64,
    /// Owning flow index.
    pub flow: usize,
    /// Which of the flow's routes this packet rides (redundant with the
    /// header's source route; kept for O(1) stats).
    pub route: usize,
    /// Emission time at the source, seconds.
    pub created_at: f64,
    pub kind: PacketKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_datapath::{IfaceId, SourceRoute};

    #[test]
    fn packet_carries_its_header() {
        let route = SourceRoute::new(&[IfaceId(3), IfaceId(4)]).unwrap();
        let p = SimPacket {
            header: EmpowerHeader::new(route, 7),
            size_bits: 96_000,
            flow: 0,
            route: 1,
            created_at: 0.5,
            kind: PacketKind::Data,
        };
        assert_eq!(p.header.seq, 7);
        assert_eq!(p.header.route.len(), 2);
        assert_eq!(p.kind, PacketKind::Data);
    }
}
