//! Simulated frames.
//!
//! Since the forwarding-graph redesign the slab itself lives in
//! `empower-datapath` ([`Pool`](empower_datapath::Pool)); this module
//! keeps the simulator's frame type and re-exports the pool under its
//! historical `PacketSlab`/`PacketId` names.

use empower_datapath::EmpowerHeader;

/// Handle into a [`PacketSlab`] (an alias of the datapath pool's
/// [`Handle`](empower_datapath::Handle)): link queues and the
/// busy-transmitter table hold these 4-byte ids instead of moving
/// header-sized [`SimPacket`] structs around.
pub use empower_datapath::Handle as PacketId;

/// Free-list slab pooling [`SimPacket`] storage. Slots are recycled
/// through a LIFO free list, so after warm-up the steady-state packet
/// churn performs no heap allocation: `insert` overwrites a freed slot
/// in place and `release` just pushes the index back.
pub type PacketSlab = empower_datapath::Pool<SimPacket>;

/// What a frame carries, beyond the EMPoWER layer-2.5 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Plain UDP-style data.
    Data,
    /// A TCP segment (the sequence number doubles as the TCP segment id).
    TcpData,
}

/// One frame in flight or queued.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// The wire header (source route, accumulated price, sequence number).
    pub header: EmpowerHeader,
    /// Frame size on the wire, bits (header + payload).
    pub size_bits: u64,
    /// Owning flow index.
    pub flow: usize,
    /// Which of the flow's routes this packet rides (redundant with the
    /// header's source route; kept for O(1) stats).
    pub route: usize,
    /// Emission time at the source, seconds.
    pub created_at: f64,
    pub kind: PacketKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_datapath::{IfaceId, SourceRoute};

    #[test]
    fn packet_carries_its_header() {
        let route = SourceRoute::new(&[IfaceId(3), IfaceId(4)]).unwrap();
        let p = SimPacket {
            header: EmpowerHeader::new(route, 7),
            size_bits: 96_000,
            flow: 0,
            route: 1,
            created_at: 0.5,
            kind: PacketKind::Data,
        };
        assert_eq!(p.header.seq, 7);
        assert_eq!(p.header.route.len(), 2);
        assert_eq!(p.kind, PacketKind::Data);
    }

    fn pkt(seq: u32) -> SimPacket {
        let route = SourceRoute::new(&[IfaceId(1)]).unwrap();
        SimPacket {
            header: EmpowerHeader::new(route, seq),
            size_bits: 96_000,
            flow: 0,
            route: 0,
            created_at: 0.0,
            kind: PacketKind::Data,
        }
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        let b = slab.insert(pkt(2));
        assert_eq!(slab.grows(), 2);
        assert_eq!(slab.live(), 2);
        slab.release(a);
        let c = slab.insert(pkt(3));
        assert_eq!(c, a, "freed slot is reused LIFO");
        assert_eq!(slab.hits(), 1);
        assert_eq!(slab.get(c).header.seq, 3);
        assert_eq!(slab.get(b).header.seq, 2);
        assert_eq!(slab.live(), 2);
    }
}
