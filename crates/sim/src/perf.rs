//! Deterministic hot-path work counters for the simulator engines.
//!
//! Both [`crate::Simulation`] (the optimized engine) and
//! [`crate::ReferenceSimulation`] (the retained pre-optimization engine)
//! maintain a [`SimPerfStats`], so `bench_sim` can compare work — not
//! wall-clock — across machines, and `ci.sh` can gate on exact counter
//! values.

/// Work counters accumulated while the simulation runs. All counts are
/// deterministic functions of the scenario (no timing, no sampling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimPerfStats {
    /// Events popped from the queue and dispatched by `run_until`.
    pub events_dispatched: u64,
    /// Occupancy tests performed by `can_start`'s interference-domain
    /// scan: domain *elements* visited in the reference engine, domain
    /// *words* ANDed in the bitset engine (both early-exit on a busy hit).
    pub domain_probes: u64,
    /// Steady-state hot-path heap allocations. The counted allocation
    /// classes are fixed (domain `.to_vec()` clones, per-tick scratch
    /// vectors, reorder/ACK result vectors, packet-struct moves through
    /// growth); the optimized engine only counts slab growth here, so the
    /// reference/optimized ratio is the headline "allocations removed"
    /// figure.
    pub hot_allocs: u64,
    /// Packet-slab inserts that reused a freed slot.
    pub slab_hits: u64,
    /// Packet-slab inserts that grew the slab (allocation-class events).
    pub slab_grows: u64,
    /// Bytes the reference engine would have allocated at hot sites the
    /// optimized engine serves from reused storage.
    pub bytes_not_allocated: u64,
    /// Per-event `String` allocations the sharded trace merge avoided by
    /// rendering every canonical sort key into one shared buffer (one
    /// saved allocation per merged trace event).
    pub trace_merge_saved_allocs: u64,
}
