use empower_model::topology::fig1_scenario;
use empower_model::{InterferenceModel, Path, SharedMedium};
use empower_sim::*;

fn main() {
    for delta in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let mut sim = Simulation::new(s.net, imap, SimConfig { delta, ..Default::default() });
        sim.add_flow(FlowSpecSim {
            src: s.gateway,
            dst: s.client,
            routes: vec![route1, route2],
            use_cc: true,
            open_loop_rates: vec![],
            pattern: TrafficPattern::Tcp { start: 0.0, stop: 300.0, size_bytes: 0 },
            delay_equalization: true,
        });
        let report = sim.run(300.0);
        let f = &report.flows[0];
        println!(
            "delta={delta} thpt(last 100s)={:.2} drop_src={} lost={}",
            f.mean_throughput(200, 300),
            f.dropped_at_source,
            f.declared_lost
        );
    }
}
