//! IEEE 1905.1 media-type codes (Table 6-12 of the standard).

use empower_model::Medium;

/// A 1905.1 media type (16-bit code on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    /// IEEE 802.3u fast Ethernet.
    FastEthernet,
    /// IEEE 802.3ab gigabit Ethernet.
    GigabitEthernet,
    /// IEEE 802.11g, 2.4 GHz.
    Ieee80211g24,
    /// IEEE 802.11n, 2.4 GHz.
    Ieee80211n24,
    /// IEEE 802.11n, 5 GHz.
    Ieee80211n5,
    /// IEEE 1901 wavelet PLC.
    Ieee1901Wavelet,
    /// IEEE 1901 FFT PLC (HomePlug AV).
    Ieee1901Fft,
    /// MoCA v1.1.
    MocaV11,
    /// Codes this subset does not interpret.
    Unknown(u16),
}

impl MediaType {
    /// Wire code (big-endian u16 in TLVs).
    pub fn code(self) -> u16 {
        match self {
            MediaType::FastEthernet => 0x0000,
            MediaType::GigabitEthernet => 0x0001,
            MediaType::Ieee80211g24 => 0x0101,
            MediaType::Ieee80211n24 => 0x0103,
            MediaType::Ieee80211n5 => 0x0104,
            MediaType::Ieee1901Wavelet => 0x0200,
            MediaType::Ieee1901Fft => 0x0201,
            MediaType::MocaV11 => 0x0300,
            MediaType::Unknown(c) => c,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            0x0000 => MediaType::FastEthernet,
            0x0001 => MediaType::GigabitEthernet,
            0x0101 => MediaType::Ieee80211g24,
            0x0103 => MediaType::Ieee80211n24,
            0x0104 => MediaType::Ieee80211n5,
            0x0200 => MediaType::Ieee1901Wavelet,
            0x0201 => MediaType::Ieee1901Fft,
            0x0300 => MediaType::MocaV11,
            other => MediaType::Unknown(other),
        }
    }
}

/// Maps a simulated medium to its 1905.1 media type: the testbed's WiFi
/// channel 1 is the 5 GHz 802.11n band, channel 2 the 2.4 GHz band (§6.1),
/// PLC is HomePlug AV (IEEE 1901 FFT).
pub fn medium_to_code(medium: Medium) -> MediaType {
    match medium {
        Medium::Wifi { channel: 1 } => MediaType::Ieee80211n5,
        Medium::Wifi { .. } => MediaType::Ieee80211n24,
        Medium::Plc => MediaType::Ieee1901Fft,
        Medium::Ethernet => MediaType::GigabitEthernet,
    }
}

/// Reverse of [`medium_to_code`] for the types this reproduction uses.
pub fn medium_from_code(media: MediaType) -> Option<Medium> {
    match media {
        MediaType::Ieee80211n5 => Some(Medium::WIFI1),
        MediaType::Ieee80211n24 | MediaType::Ieee80211g24 => Some(Medium::WIFI2),
        MediaType::Ieee1901Fft | MediaType::Ieee1901Wavelet => Some(Medium::Plc),
        MediaType::FastEthernet | MediaType::GigabitEthernet => Some(Medium::Ethernet),
        MediaType::MocaV11 | MediaType::Unknown(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for mt in [
            MediaType::FastEthernet,
            MediaType::GigabitEthernet,
            MediaType::Ieee80211g24,
            MediaType::Ieee80211n24,
            MediaType::Ieee80211n5,
            MediaType::Ieee1901Wavelet,
            MediaType::Ieee1901Fft,
            MediaType::MocaV11,
        ] {
            assert_eq!(MediaType::from_code(mt.code()), mt);
        }
        assert_eq!(MediaType::from_code(0x7777), MediaType::Unknown(0x7777));
    }

    #[test]
    fn mediums_round_trip_through_1905_codes() {
        for m in [Medium::WIFI1, Medium::WIFI2, Medium::Plc, Medium::Ethernet] {
            let back = medium_from_code(medium_to_code(m)).unwrap();
            // WiFi channels map onto distinct bands and back.
            assert_eq!(back.is_wifi(), m.is_wifi());
            assert_eq!(back.is_plc(), m.is_plc());
        }
    }

    #[test]
    fn plc_is_homeplug_av() {
        assert_eq!(medium_to_code(Medium::Plc), MediaType::Ieee1901Fft);
        assert_eq!(medium_to_code(Medium::Plc).code(), 0x0201);
    }
}
