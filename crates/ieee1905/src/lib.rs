#![forbid(unsafe_code)]
//! # empower-ieee1905
//!
//! A working subset of **IEEE 1905.1-2013** — the "Convergent Digital Home
//! Network" abstraction layer the paper builds on (§1: it sits between the
//! data-link and network layers and federates WiFi, PLC, Ethernet and MoCA
//! interfaces under one *abstraction-layer MAC address*, "without
//! specifying routing or load-balancing algorithms"; EMPoWER supplies
//! those).
//!
//! Implemented here, wire-format faithful:
//!
//! * **CMDUs** (control message data units): the 8-byte header, message
//!   types, and the TLV framing with the mandatory End-of-Message TLV;
//! * the TLVs needed for EMPoWER's control plane: AL MAC address,
//!   interface MAC address, device information, 1905 neighbor devices, and
//!   transmitter link metrics (which carry exactly the per-technology
//!   capacity estimates EMPoWER's routing consumes);
//! * the standard's **media-type codes** (Table 6-12), mapped to and from
//!   [`empower_model::Medium`];
//! * a **topology-discovery agent**: periodic Topology Discovery
//!   messages, a neighbor database with standard ageing, Topology
//!   Query/Response handling, and reconstruction of an
//!   [`empower_model::Network`] from what the agents discovered — so the
//!   routing layer can run on a 1905.1-discovered topology instead of
//!   ground truth.

pub mod agent;
pub mod cmdu;
pub mod fragment;
pub mod media;
pub mod tlv;

pub use agent::{AgentConfig, DiscoveredLink, TopologyAgent};
pub use cmdu::{Cmdu, CmduError, MessageType};
pub use fragment::{fragment, Defragmenter};
pub use media::{medium_from_code, medium_to_code, MediaType};
pub use tlv::{Tlv, TlvError, TlvType};

/// An abstraction-layer MAC address (the 1905.1 device identity, distinct
/// from any physical interface's MAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlMacAddress(pub [u8; 6]);

impl AlMacAddress {
    /// Derives the AL MAC for a node of the simulated network
    /// (locally-administered, distinct from all interface MACs).
    pub fn for_node(node: empower_model::NodeId) -> Self {
        AlMacAddress([0x02, 0x19, 0x05, 0x00, (node.0 >> 8) as u8, node.0 as u8])
    }

    /// Reverse of [`AlMacAddress::for_node`], if this AL MAC is one.
    pub fn node(&self) -> Option<empower_model::NodeId> {
        let m = self.0;
        (m[0] == 0x02 && m[1] == 0x19 && m[2] == 0x05 && m[3] == 0x00)
            .then(|| empower_model::NodeId(((m[4] as u32) << 8) | m[5] as u32))
    }
}

impl std::fmt::Display for AlMacAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", m[0], m[1], m[2], m[3], m[4], m[5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::NodeId;

    #[test]
    fn al_mac_round_trips_node_ids() {
        for id in [0u32, 1, 255, 256, 65535] {
            let mac = AlMacAddress::for_node(NodeId(id));
            assert_eq!(mac.node(), Some(NodeId(id)));
        }
    }

    #[test]
    fn al_mac_is_locally_administered_unicast() {
        let mac = AlMacAddress::for_node(NodeId(7));
        assert_eq!(mac.0[0] & 0x02, 0x02);
        assert_eq!(mac.0[0] & 0x01, 0x00);
    }

    #[test]
    fn foreign_macs_are_not_node_macs() {
        assert_eq!(AlMacAddress([0xaa; 6]).node(), None);
    }

    #[test]
    fn display_is_colon_hex() {
        let mac = AlMacAddress::for_node(NodeId(1));
        assert_eq!(mac.to_string(), "02:19:05:00:00:01");
    }
}
