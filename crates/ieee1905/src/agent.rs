//! Topology discovery (clause 8 of the standard) and reconstruction of a
//! routable network view from it.
//!
//! Each 1905.1 device periodically multicasts a **Topology Discovery** CMDU
//! on every interface (every 60 s); receivers keep a neighbor database and
//! age entries out after 180 s without a refresh. On request (Link Metric
//! Query), a device reports the MAC throughput capacity of each of its
//! links — which is precisely the `c_l` input EMPoWER's routing needs.
//!
//! [`TopologyAgent`] implements the device side; [`reconstruct_network`]
//! assembles the collected link metrics back into an
//! [`empower_model::Network`], so the whole routing/congestion-control
//! stack can run on *discovered* state rather than ground truth.

use std::collections::BTreeMap;

use empower_model::{Medium, Network, NetworkBuilder, NodeId};

use crate::cmdu::{Cmdu, MessageType};
use crate::media::{medium_from_code, medium_to_code};
use crate::tlv::{Tlv, TlvType};
use crate::AlMacAddress;

/// Standard timers.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// Topology Discovery period, seconds (60 in the standard).
    pub discovery_interval_secs: f64,
    /// Neighbor ageing timeout, seconds (the standard allows up to 180).
    pub neighbor_timeout_secs: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig { discovery_interval_secs: 60.0, neighbor_timeout_secs: 180.0 }
    }
}

/// One discovered directed link with its reported capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredLink {
    pub from: NodeId,
    pub to: NodeId,
    pub medium: Medium,
    pub capacity_mbps: f64,
}

/// The per-device discovery agent.
#[derive(Debug)]
pub struct TopologyAgent {
    node: NodeId,
    al_mac: AlMacAddress,
    config: AgentConfig,
    /// Neighbor database: (neighbor AL MAC, medium) → last heard, seconds.
    neighbors: BTreeMap<(AlMacAddress, Medium), f64>,
    last_discovery: Option<f64>,
    next_msg_id: u16,
}

impl TopologyAgent {
    /// Creates an agent for `node`.
    pub fn new(node: NodeId, config: AgentConfig) -> Self {
        TopologyAgent {
            node,
            al_mac: AlMacAddress::for_node(node),
            config,
            neighbors: BTreeMap::new(),
            last_discovery: None,
            next_msg_id: 0,
        }
    }

    /// The agent's abstraction-layer MAC.
    pub fn al_mac(&self) -> AlMacAddress {
        self.al_mac
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current (non-aged) neighbors on `medium`.
    pub fn neighbors_on(&self, medium: Medium, now: f64) -> Vec<AlMacAddress> {
        let mut out: Vec<AlMacAddress> = self
            .neighbors
            .iter()
            .filter(|(&(_, m), &heard)| {
                m == medium && now - heard <= self.config.neighbor_timeout_secs
            })
            .map(|(&(mac, _), _)| mac)
            .collect();
        out.sort();
        out
    }

    /// If the discovery timer expired, produce the Topology Discovery CMDU
    /// to multicast on every interface.
    pub fn poll_discovery(&mut self, now: f64) -> Option<Cmdu> {
        let due =
            self.last_discovery.is_none_or(|t| now - t >= self.config.discovery_interval_secs);
        if !due {
            return None;
        }
        self.last_discovery = Some(now);
        let id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        Some(Cmdu::new(MessageType::TopologyDiscovery, id, vec![Tlv::al_mac(self.al_mac)]))
    }

    /// Processes a CMDU received on `medium` at time `now`.
    pub fn on_cmdu(&mut self, medium: Medium, cmdu: &Cmdu, now: f64) {
        if cmdu.message_type != MessageType::TopologyDiscovery {
            return;
        }
        for tlv in &cmdu.tlvs {
            if tlv.tlv_type == TlvType::AlMacAddress {
                if let Ok(mac) = tlv.parse_al_mac() {
                    if mac != self.al_mac {
                        self.neighbors.insert((mac, medium), now);
                    }
                }
            }
        }
    }

    /// Drops aged-out neighbors.
    pub fn age_out(&mut self, now: f64) {
        let timeout = self.config.neighbor_timeout_secs;
        self.neighbors.retain(|_, &mut heard| now - heard <= timeout);
    }

    /// Builds the Link Metric Response for this device: one transmitter-
    /// link-metric TLV per (discovered neighbor, medium), with the capacity
    /// the device measures on that link (`measure` is the device's local
    /// estimator — MCS/BLE-based in the paper).
    pub fn link_metric_response(
        &mut self,
        now: f64,
        mut measure: impl FnMut(NodeId, Medium) -> Option<f64>,
    ) -> Cmdu {
        let id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        let mut tlvs = Vec::new();
        let mut entries: Vec<(AlMacAddress, Medium)> = self
            .neighbors
            .iter()
            .filter(|(_, &heard)| now - heard <= self.config.neighbor_timeout_secs)
            .map(|(&k, _)| k)
            .collect();
        entries.sort_by_key(|&(mac, m)| (mac, m.tag()));
        for (mac, medium) in entries {
            let Some(node) = mac.node() else { continue };
            if let Some(cap) = measure(node, medium) {
                tlvs.push(Tlv::transmitter_link_metric(mac, medium_to_code(medium), cap));
            }
        }
        Cmdu::new(MessageType::LinkMetricResponse, id, tlvs)
    }
}

/// Parses every transmitter-link-metric TLV of a Link Metric Response sent
/// by `from`.
pub fn parse_link_metric_response(from: NodeId, cmdu: &Cmdu) -> Vec<DiscoveredLink> {
    let mut out = Vec::new();
    if cmdu.message_type != MessageType::LinkMetricResponse {
        return out;
    }
    for tlv in &cmdu.tlvs {
        if tlv.tlv_type == TlvType::TransmitterLinkMetric {
            if let Ok((mac, media, cap)) = tlv.parse_link_metric() {
                if let (Some(to), Some(medium)) = (mac.node(), medium_from_code(media)) {
                    out.push(DiscoveredLink { from, to, medium, capacity_mbps: cap });
                }
            }
        }
    }
    out
}

/// Rebuilds a routable [`Network`] from discovered links, reusing the
/// reference network's node inventory (positions, interface sets, panels —
/// the things a 1905.1 Device Information exchange would carry) but *only*
/// the links and capacities that discovery reported.
pub fn reconstruct_network(reference: &Network, links: &[DiscoveredLink]) -> Network {
    let mut b = NetworkBuilder::new();
    for node in reference.nodes() {
        b.add_labeled_node(node.pos, node.mediums.clone(), node.panel, node.label.clone());
    }
    for l in links {
        if l.capacity_mbps > 0.0 {
            b.add_link(l.from, l.to, l.medium, l.capacity_mbps);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    /// Runs a full discovery round over a ground-truth network: every agent
    /// multicasts on each medium; delivery = every node sharing an alive
    /// link on that medium hears it.
    fn discovery_round(net: &Network, agents: &mut [TopologyAgent], now: f64) {
        let broadcasts: Vec<(NodeId, Option<Cmdu>)> =
            agents.iter_mut().map(|a| (a.node(), a.poll_discovery(now))).collect();
        for (sender, cmdu) in broadcasts {
            let Some(cmdu) = cmdu else { continue };
            for link in net.out_links(sender) {
                if link.is_alive() {
                    agents[link.to.index()].on_cmdu(link.medium, &cmdu, now);
                }
            }
        }
    }

    fn collect_links(net: &Network, agents: &mut [TopologyAgent], now: f64) -> Vec<DiscoveredLink> {
        let mut all = Vec::new();
        for a in agents.iter_mut() {
            let node = a.node();
            let response = a.link_metric_response(now, |to, medium| {
                net.find_link(node, to, medium).map(|l| l.capacity_mbps)
            });
            all.extend(parse_link_metric_response(node, &response));
        }
        all
    }

    #[test]
    fn discovery_reconstructs_the_testbed() {
        let t = testbed22(1);
        let mut agents: Vec<TopologyAgent> = t
            .net
            .nodes()
            .iter()
            .map(|n| TopologyAgent::new(n.id, AgentConfig::default()))
            .collect();
        discovery_round(&t.net, &mut agents, 0.0);
        let links = collect_links(&t.net, &mut agents, 1.0);
        assert_eq!(links.len(), t.net.link_count(), "every directed link discovered");
        let rebuilt = reconstruct_network(&t.net, &links);
        assert_eq!(rebuilt.link_count(), t.net.link_count());
        // Capacities round-trip at the wire's 1 Mbps granularity.
        for l in rebuilt.links() {
            let truth = t.net.find_link(l.from, l.to, l.medium).unwrap();
            assert!((l.capacity_mbps - truth.capacity_mbps).abs() <= 0.5);
        }
    }

    #[test]
    fn routing_works_on_the_discovered_topology() {
        use empower_core::Scheme;
        let t = testbed22(1);
        let mut agents: Vec<TopologyAgent> = t
            .net
            .nodes()
            .iter()
            .map(|n| TopologyAgent::new(n.id, AgentConfig::default()))
            .collect();
        discovery_round(&t.net, &mut agents, 0.0);
        let links = collect_links(&t.net, &mut agents, 1.0);
        let rebuilt = reconstruct_network(&t.net, &links);
        let imap = CarrierSense::default().build_map(&rebuilt);
        let routes = Scheme::Empower.compute_routes(&rebuilt, &imap, NodeId(0), NodeId(12), 5);
        assert!(!routes.is_empty());
        // Nominal capacity on the discovered view is within the 1 Mbps wire
        // quantization of the ground-truth answer.
        let truth_imap = CarrierSense::default().build_map(&t.net);
        let truth = Scheme::Empower.compute_routes(&t.net, &truth_imap, NodeId(0), NodeId(12), 5);
        assert!(
            (routes.total_rate() - truth.total_rate()).abs() / truth.total_rate() < 0.05,
            "discovered {:.1} vs truth {:.1}",
            routes.total_rate(),
            truth.total_rate()
        );
    }

    #[test]
    fn neighbors_age_out_without_refresh() {
        let t = testbed22(1);
        let mut agents: Vec<TopologyAgent> = t
            .net
            .nodes()
            .iter()
            .map(|n| TopologyAgent::new(n.id, AgentConfig::default()))
            .collect();
        discovery_round(&t.net, &mut agents, 0.0);
        let medium = Medium::Plc;
        let before = agents[0].neighbors_on(medium, 10.0).len();
        assert!(before > 0);
        // 200 s later with no refresh: everything aged out.
        agents[0].age_out(200.0);
        assert!(agents[0].neighbors_on(medium, 200.0).is_empty());
    }

    #[test]
    fn discovery_respects_the_60s_timer() {
        let mut agent = TopologyAgent::new(NodeId(0), AgentConfig::default());
        assert!(agent.poll_discovery(0.0).is_some());
        assert!(agent.poll_discovery(30.0).is_none());
        assert!(agent.poll_discovery(60.0).is_some());
    }

    #[test]
    fn dead_links_are_not_discovered() {
        let t = testbed22(1);
        let mut net = t.net.clone();
        // Kill one specific link; the agent's measurement returns None.
        let victim = net.links()[0].id;
        net.set_capacity(victim, 0.0);
        let mut agents: Vec<TopologyAgent> =
            net.nodes().iter().map(|n| TopologyAgent::new(n.id, AgentConfig::default())).collect();
        discovery_round(&net, &mut agents, 0.0);
        let links = collect_links(&net, &mut agents, 1.0);
        // The victim's (from, to, medium) triple is absent (capacity 0
        // never becomes a DiscoveredLink edge in the rebuilt graph).
        let rebuilt = reconstruct_network(&net, &links);
        let v = net.link(victim);
        assert!(rebuilt.find_link(v.from, v.to, v.medium).is_none());
    }
}
