//! CMDUs — 1905.1 control message data units.
//!
//! Wire format (Figure 6-2 of the standard): 1 byte message version,
//! 1 reserved byte, 2 bytes message type, 2 bytes message id, 1 byte
//! fragment id, 1 byte flags (bit 7 = last fragment, bit 6 = relay
//! indicator), then the TLV list terminated by End-of-Message.

use empower_datapath::wire::{Buf, BufMut};

use crate::tlv::{Tlv, TlvError, TlvType};

/// Message types used by this subset (Table 6-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    TopologyDiscovery,
    TopologyNotification,
    TopologyQuery,
    TopologyResponse,
    LinkMetricQuery,
    LinkMetricResponse,
    Other(u16),
}

impl MessageType {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            MessageType::TopologyDiscovery => 0x0000,
            MessageType::TopologyNotification => 0x0001,
            MessageType::TopologyQuery => 0x0002,
            MessageType::TopologyResponse => 0x0003,
            MessageType::LinkMetricQuery => 0x0005,
            MessageType::LinkMetricResponse => 0x0006,
            MessageType::Other(c) => c,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            0x0000 => MessageType::TopologyDiscovery,
            0x0001 => MessageType::TopologyNotification,
            0x0002 => MessageType::TopologyQuery,
            0x0003 => MessageType::TopologyResponse,
            0x0005 => MessageType::LinkMetricQuery,
            0x0006 => MessageType::LinkMetricResponse,
            other => MessageType::Other(other),
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmduError {
    Truncated,
    /// The header's version field is not 0 (1905.1-2013).
    UnsupportedVersion(u8),
    /// TLV list error.
    Tlv(TlvError),
    /// The TLV list did not terminate with End-of-Message.
    MissingEndOfMessage,
}

impl From<TlvError> for CmduError {
    fn from(e: TlvError) -> Self {
        CmduError::Tlv(e)
    }
}

impl std::fmt::Display for CmduError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmduError::Truncated => write!(f, "cmdu truncated"),
            CmduError::UnsupportedVersion(v) => write!(f, "unsupported cmdu version {v}"),
            CmduError::Tlv(e) => write!(f, "cmdu tlv error: {e}"),
            CmduError::MissingEndOfMessage => write!(f, "cmdu missing end-of-message tlv"),
        }
    }
}

impl std::error::Error for CmduError {}

/// A CMDU: header + TLVs (End-of-Message excluded from `tlvs`; it is added
/// on encode and consumed on decode).
#[derive(Debug, Clone, PartialEq)]
pub struct Cmdu {
    pub message_type: MessageType,
    pub message_id: u16,
    pub fragment_id: u8,
    pub last_fragment: bool,
    pub relay: bool,
    pub tlvs: Vec<Tlv>,
}

impl Cmdu {
    /// A single-fragment CMDU.
    pub fn new(message_type: MessageType, message_id: u16, tlvs: Vec<Tlv>) -> Self {
        Cmdu { message_type, message_id, fragment_id: 0, last_fragment: true, relay: false, tlvs }
    }

    /// Serializes to bytes (header + TLVs + End-of-Message).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(8 + 3 + self.tlvs.iter().map(|t| 3 + t.value.len()).sum::<usize>());
        buf.put_u8(0); // messageVersion: 1905.1-2013
        buf.put_u8(0); // reserved
        buf.put_u16(self.message_type.code());
        buf.put_u16(self.message_id);
        buf.put_u8(self.fragment_id);
        let mut flags = 0u8;
        if self.last_fragment {
            flags |= 0x80;
        }
        if self.relay {
            flags |= 0x40;
        }
        buf.put_u8(flags);
        for tlv in &self.tlvs {
            tlv.encode(&mut buf);
        }
        Tlv::end_of_message().encode(&mut buf);
        buf
    }

    /// Parses a CMDU from bytes.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CmduError> {
        if buf.remaining() < 8 {
            return Err(CmduError::Truncated);
        }
        let version = buf.get_u8();
        if version != 0 {
            return Err(CmduError::UnsupportedVersion(version));
        }
        let _reserved = buf.get_u8();
        let message_type = MessageType::from_code(buf.get_u16());
        let message_id = buf.get_u16();
        let fragment_id = buf.get_u8();
        let flags = buf.get_u8();
        let mut tlvs = Vec::new();
        loop {
            let tlv = Tlv::decode(&mut buf)?;
            if tlv.tlv_type == TlvType::EndOfMessage {
                break;
            }
            tlvs.push(tlv);
        }
        Ok(Cmdu {
            message_type,
            message_id,
            fragment_id,
            last_fragment: flags & 0x80 != 0,
            relay: flags & 0x40 != 0,
            tlvs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaType;
    use crate::AlMacAddress;
    use empower_model::NodeId;

    fn sample() -> Cmdu {
        Cmdu::new(
            MessageType::TopologyDiscovery,
            42,
            vec![
                Tlv::al_mac(AlMacAddress::for_node(NodeId(1))),
                Tlv::mac_address([2, 0, 0, 0, 0, 9]),
            ],
        )
    }

    #[test]
    fn cmdu_round_trips() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Cmdu::decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn link_metric_response_round_trips() {
        let c = Cmdu::new(
            MessageType::LinkMetricResponse,
            7,
            vec![Tlv::transmitter_link_metric(
                AlMacAddress::for_node(NodeId(4)),
                MediaType::Ieee80211n5,
                88.0,
            )],
        );
        let back = Cmdu::decode(&c.to_bytes()).unwrap();
        let (mac, media, cap) = back.tlvs[0].parse_link_metric().unwrap();
        assert_eq!(mac, AlMacAddress::for_node(NodeId(4)));
        assert_eq!(media, MediaType::Ieee80211n5);
        assert_eq!(cap, 88.0);
    }

    #[test]
    fn missing_end_of_message_is_an_error() {
        let mut bytes = sample().to_bytes();
        // Chop off the 3-byte End-of-Message TLV.
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(Cmdu::decode(&bytes), Err(CmduError::Tlv(TlvError::Truncated))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 9;
        assert_eq!(Cmdu::decode(&bytes), Err(CmduError::UnsupportedVersion(9)));
    }

    #[test]
    fn flags_encode_last_fragment_and_relay() {
        let mut c = sample();
        c.relay = true;
        c.last_fragment = false;
        let back = Cmdu::decode(&c.to_bytes()).unwrap();
        assert!(back.relay);
        assert!(!back.last_fragment);
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert_eq!(Cmdu::decode(&[0, 0, 0]), Err(CmduError::Truncated));
    }
}
