//! CMDU fragmentation and reassembly (§7.1.1 of the standard).
//!
//! A CMDU whose TLV list exceeds the transport MTU is split into fragments
//! sharing the message id, with increasing fragment ids and the
//! last-fragment flag on the final piece. TLVs are never split across
//! fragments (the standard's rule); a single TLV larger than the MTU is a
//! caller error. Reassembly collects fragments per (source, message id)
//! until the last-fragment flag arrives, tolerating reordering.

use std::collections::BTreeMap;

use crate::cmdu::{Cmdu, CmduError, MessageType};
use crate::tlv::Tlv;

/// Splits `cmdu` into wire-ready fragments whose encoded size (header +
/// TLVs + End-of-Message) stays within `mtu` bytes.
///
/// # Panics
/// Panics if a single TLV cannot fit in an MTU-sized fragment, or if the
/// MTU cannot even hold the 8-byte header plus the End-of-Message TLV.
pub fn fragment(cmdu: &Cmdu, mtu: usize) -> Vec<Cmdu> {
    const HEADER: usize = 8;
    const EOM: usize = 3;
    assert!(mtu > HEADER + EOM, "mtu {mtu} cannot hold a CMDU at all");
    let budget = mtu - HEADER - EOM;

    let mut fragments: Vec<Vec<Tlv>> = Vec::new();
    let mut current: Vec<Tlv> = Vec::new();
    let mut used = 0usize;
    for tlv in &cmdu.tlvs {
        let size = 3 + tlv.value.len();
        assert!(size <= budget, "single TLV of {size} B exceeds the {mtu} B MTU");
        if used + size > budget {
            fragments.push(std::mem::take(&mut current));
            used = 0;
        }
        used += size;
        current.push(tlv.clone());
    }
    fragments.push(current);

    let count = fragments.len();
    fragments
        .into_iter()
        .enumerate()
        .map(|(i, tlvs)| Cmdu {
            message_type: cmdu.message_type,
            message_id: cmdu.message_id,
            fragment_id: i as u8,
            last_fragment: i + 1 == count,
            relay: cmdu.relay,
            tlvs,
        })
        .collect()
}

/// Reassembles fragmented CMDUs, keyed by (sender key, message id).
///
/// The sender key is whatever uniquely identifies the transmitting device
/// for the caller (e.g. the AL MAC); reassembly state for incomplete
/// messages is bounded by [`Defragmenter::MAX_PENDING`]. Keys are `Ord`
/// so pending-state iteration order is deterministic.
#[derive(Debug, Default)]
pub struct Defragmenter<K: Ord + Clone> {
    pending: BTreeMap<(K, u16), Vec<Option<Cmdu>>>,
}

impl<K: Ord + Clone> Defragmenter<K> {
    /// Cap on simultaneously reassembling messages (oldest-insert eviction
    /// is deliberately NOT implemented; hitting the cap drops the new
    /// message, which a retransmitted discovery cycle recovers from).
    pub const MAX_PENDING: usize = 64;

    /// A fresh defragmenter.
    pub fn new() -> Self {
        Defragmenter { pending: BTreeMap::new() }
    }

    /// Feeds one received fragment; returns the reassembled CMDU once all
    /// fragments up to the last-fragment flag have arrived.
    pub fn accept(&mut self, sender: K, fragment: Cmdu) -> Result<Option<Cmdu>, CmduError> {
        let key = (sender, fragment.message_id);
        if !self.pending.contains_key(&key) && self.pending.len() >= Self::MAX_PENDING {
            return Ok(None);
        }
        let slots = self.pending.entry(key.clone()).or_default();
        let idx = fragment.fragment_id as usize;
        if slots.len() <= idx {
            slots.resize(idx + 1, None);
        }
        slots[idx] = Some(fragment);
        // Complete iff some stored fragment is flagged last AND every slot
        // up to it is filled.
        let last_idx = slots.iter().position(|s| s.as_ref().is_some_and(|f| f.last_fragment));
        let Some(last_idx) = last_idx else {
            return Ok(None);
        };
        if slots[..=last_idx].iter().any(Option::is_none) {
            return Ok(None);
        }
        let Some(mut slots) = self.pending.remove(&key) else {
            return Ok(None);
        };
        slots.truncate(last_idx + 1);
        // Every slot up to `last_idx` was just verified filled, so
        // flattening loses nothing; the empty case cannot occur (slot
        // `last_idx` itself is filled) and degrades to "keep waiting".
        let mut parts = slots.into_iter().flatten();
        let Some(mut whole) = parts.next() else {
            return Ok(None);
        };
        for part in parts {
            whole.tlvs.extend(part.tlvs);
        }
        whole.fragment_id = 0;
        whole.last_fragment = true;
        Ok(Some(whole))
    }

    /// Number of messages mid-reassembly.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Convenience: fragment, encode, decode and reassemble — used in tests and
/// as executable documentation of the wire round trip.
pub fn wire_round_trip(cmdu: &Cmdu, mtu: usize) -> Result<Cmdu, CmduError> {
    let mut defrag: Defragmenter<u8> = Defragmenter::new();
    let mut result = None;
    for frag in fragment(cmdu, mtu) {
        let bytes = frag.to_bytes();
        assert!(bytes.len() <= mtu, "fragment overran the MTU: {} > {mtu}", bytes.len());
        let decoded = Cmdu::decode(&bytes)?;
        if let Some(whole) = defrag.accept(0, decoded)? {
            result = Some(whole);
        }
    }
    result.ok_or(CmduError::MissingEndOfMessage)
}

/// Returns true for message types the standard floods through relays
/// (topology discovery/notification); query/response types are unicast.
pub fn is_relayed_multicast(t: MessageType) -> bool {
    matches!(t, MessageType::TopologyDiscovery | MessageType::TopologyNotification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaType;
    use crate::AlMacAddress;
    use empower_model::NodeId;

    fn big_cmdu(tlv_count: usize) -> Cmdu {
        let tlvs = (0..tlv_count)
            .map(|i| {
                Tlv::transmitter_link_metric(
                    AlMacAddress::for_node(NodeId(i as u32)),
                    MediaType::Ieee1901Fft,
                    50.0 + i as f64,
                )
            })
            .collect();
        Cmdu::new(MessageType::LinkMetricResponse, 99, tlvs)
    }

    #[test]
    fn small_messages_stay_whole() {
        let c = big_cmdu(2);
        let frags = fragment(&c, 1500);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].last_fragment);
        assert_eq!(frags[0].tlvs, c.tlvs);
    }

    #[test]
    fn large_messages_split_and_reassemble() {
        // 100 link-metric TLVs at 13 B each ≈ 1.3 kB; MTU 128 forces many
        // fragments.
        let c = big_cmdu(100);
        let frags = fragment(&c, 128);
        assert!(frags.len() > 5, "{} fragments", frags.len());
        assert!(frags[..frags.len() - 1].iter().all(|f| !f.last_fragment));
        assert!(frags.last().unwrap().last_fragment);
        let whole = wire_round_trip(&c, 128).unwrap();
        assert_eq!(whole.tlvs, c.tlvs);
        assert_eq!(whole.message_id, 99);
    }

    #[test]
    fn reassembly_tolerates_reordering() {
        let c = big_cmdu(60);
        let mut frags = fragment(&c, 128);
        frags.reverse();
        let mut defrag: Defragmenter<u8> = Defragmenter::new();
        let mut done = None;
        for f in frags {
            if let Some(w) = defrag.accept(1, f).unwrap() {
                done = Some(w);
            }
        }
        assert_eq!(done.unwrap().tlvs, c.tlvs);
        assert_eq!(defrag.pending(), 0);
    }

    #[test]
    fn interleaved_senders_do_not_mix() {
        let c1 = big_cmdu(40);
        let mut c2 = big_cmdu(40);
        c2.tlvs.reverse();
        let f1 = fragment(&c1, 128);
        let f2 = fragment(&c2, 128);
        let mut defrag: Defragmenter<u8> = Defragmenter::new();
        let mut results = Vec::new();
        for (a, b) in f1.into_iter().zip(f2) {
            if let Some(w) = defrag.accept(1, a).unwrap() {
                results.push((1, w));
            }
            if let Some(w) = defrag.accept(2, b).unwrap() {
                results.push((2, w));
            }
        }
        assert_eq!(results.len(), 2);
        let r1 = &results.iter().find(|(k, _)| *k == 1).unwrap().1;
        let r2 = &results.iter().find(|(k, _)| *k == 2).unwrap().1;
        assert_eq!(r1.tlvs, c1.tlvs);
        assert_eq!(r2.tlvs, c2.tlvs);
    }

    #[test]
    fn missing_fragment_blocks_completion() {
        let c = big_cmdu(60);
        let frags = fragment(&c, 128);
        let mut defrag: Defragmenter<u8> = Defragmenter::new();
        for (i, f) in frags.into_iter().enumerate() {
            if i == 1 {
                continue; // lost on the wire
            }
            assert!(defrag.accept(7, f).unwrap().is_none());
        }
        assert_eq!(defrag.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_tlv_is_a_caller_error() {
        let c = Cmdu::new(
            MessageType::TopologyResponse,
            1,
            vec![Tlv { tlv_type: crate::tlv::TlvType::Other(200), value: vec![0; 5000] }],
        );
        fragment(&c, 1500);
    }

    #[test]
    fn relay_classification() {
        assert!(is_relayed_multicast(MessageType::TopologyDiscovery));
        assert!(is_relayed_multicast(MessageType::TopologyNotification));
        assert!(!is_relayed_multicast(MessageType::LinkMetricQuery));
        assert!(!is_relayed_multicast(MessageType::TopologyResponse));
    }
}
