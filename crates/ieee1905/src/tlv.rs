//! IEEE 1905.1 TLVs (type-length-value elements).
//!
//! Wire format: 1 byte type, 2 bytes length (big-endian), `length` bytes of
//! value. Every CMDU's TLV list is terminated by the End-of-Message TLV
//! (type 0, length 0).

use empower_datapath::wire::{Buf, BufMut};

use crate::media::MediaType;
use crate::AlMacAddress;

/// TLV type codes used by this subset (Table 6-7 of the standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlvType {
    EndOfMessage,
    AlMacAddress,
    MacAddress,
    DeviceInformation,
    Ieee1905NeighborDevice,
    TransmitterLinkMetric,
    Other(u8),
}

impl TlvType {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            TlvType::EndOfMessage => 0,
            TlvType::AlMacAddress => 1,
            TlvType::MacAddress => 2,
            TlvType::DeviceInformation => 3,
            TlvType::Ieee1905NeighborDevice => 7,
            TlvType::TransmitterLinkMetric => 9,
            TlvType::Other(c) => c,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => TlvType::EndOfMessage,
            1 => TlvType::AlMacAddress,
            2 => TlvType::MacAddress,
            3 => TlvType::DeviceInformation,
            7 => TlvType::Ieee1905NeighborDevice,
            9 => TlvType::TransmitterLinkMetric,
            other => TlvType::Other(other),
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlvError {
    /// Fewer bytes than the header or declared length require.
    Truncated,
    /// A typed accessor was called on a value with the wrong size.
    Malformed(&'static str),
}

impl std::fmt::Display for TlvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlvError::Truncated => write!(f, "tlv truncated"),
            TlvError::Malformed(what) => write!(f, "malformed {what} tlv"),
        }
    }
}

impl std::error::Error for TlvError {}

/// A raw TLV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlv {
    pub tlv_type: TlvType,
    pub value: Vec<u8>,
}

impl Tlv {
    /// The End-of-Message terminator.
    pub fn end_of_message() -> Self {
        Tlv { tlv_type: TlvType::EndOfMessage, value: Vec::new() }
    }

    /// Builds an AL-MAC-address TLV.
    pub fn al_mac(mac: AlMacAddress) -> Self {
        Tlv { tlv_type: TlvType::AlMacAddress, value: mac.0.to_vec() }
    }

    /// Builds an interface-MAC-address TLV.
    pub fn mac_address(mac: [u8; 6]) -> Self {
        Tlv { tlv_type: TlvType::MacAddress, value: mac.to_vec() }
    }

    /// Builds a transmitter-link-metric entry: the neighbor the link leads
    /// to, the medium, and the MAC-layer throughput capacity in Mbps — the
    /// exact quantity EMPoWER's link metric `d_l = 1/c_l` needs.
    pub fn transmitter_link_metric(
        neighbor: AlMacAddress,
        media: MediaType,
        capacity_mbps: f64,
    ) -> Self {
        let mut v = Vec::with_capacity(6 + 2 + 2);
        v.extend_from_slice(&neighbor.0);
        v.put_u16(media.code());
        // The standard carries macThroughputCapacity as u16 Mbps.
        v.put_u16(capacity_mbps.round().clamp(0.0, u16::MAX as f64) as u16);
        Tlv { tlv_type: TlvType::TransmitterLinkMetric, value: v }
    }

    /// Parses a transmitter-link-metric TLV.
    pub fn parse_link_metric(&self) -> Result<(AlMacAddress, MediaType, f64), TlvError> {
        if self.tlv_type != TlvType::TransmitterLinkMetric || self.value.len() != 10 {
            return Err(TlvError::Malformed("transmitter link metric"));
        }
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&self.value[..6]);
        let mut rest = &self.value[6..];
        let media = MediaType::from_code(rest.get_u16());
        let cap = rest.get_u16() as f64;
        Ok((AlMacAddress(mac), media, cap))
    }

    /// Parses an AL-MAC-address TLV.
    pub fn parse_al_mac(&self) -> Result<AlMacAddress, TlvError> {
        if self.tlv_type != TlvType::AlMacAddress || self.value.len() != 6 {
            return Err(TlvError::Malformed("al mac"));
        }
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&self.value);
        Ok(AlMacAddress(mac))
    }

    /// Serializes into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.tlv_type.code());
        buf.put_u16(self.value.len() as u16);
        buf.put_slice(&self.value);
    }

    /// Parses one TLV from `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, TlvError> {
        if buf.remaining() < 3 {
            return Err(TlvError::Truncated);
        }
        let tlv_type = TlvType::from_code(buf.get_u8());
        let len = buf.get_u16() as usize;
        if buf.remaining() < len {
            return Err(TlvError::Truncated);
        }
        let mut value = vec![0u8; len];
        buf.copy_to_slice(&mut value);
        Ok(Tlv { tlv_type, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::NodeId;

    #[test]
    fn tlv_round_trips() {
        let tlv = Tlv::al_mac(AlMacAddress::for_node(NodeId(3)));
        let mut buf = Vec::new();
        tlv.encode(&mut buf);
        let back = Tlv::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(back, tlv);
        assert_eq!(back.parse_al_mac().unwrap(), AlMacAddress::for_node(NodeId(3)));
    }

    #[test]
    fn link_metric_carries_capacity() {
        let n = AlMacAddress::for_node(NodeId(9));
        let tlv = Tlv::transmitter_link_metric(n, MediaType::Ieee1901Fft, 67.4);
        let (mac, media, cap) = tlv.parse_link_metric().unwrap();
        assert_eq!(mac, n);
        assert_eq!(media, MediaType::Ieee1901Fft);
        assert_eq!(cap, 67.0); // u16 Mbps granularity on the wire
    }

    #[test]
    fn truncated_tlvs_are_rejected() {
        let tlv = Tlv::mac_address([1, 2, 3, 4, 5, 6]);
        let mut buf = Vec::new();
        tlv.encode(&mut buf);
        assert_eq!(Tlv::decode(&mut &buf[..2]).unwrap_err(), TlvError::Truncated);
        assert_eq!(Tlv::decode(&mut &buf[..5]).unwrap_err(), TlvError::Truncated);
    }

    #[test]
    fn wrong_typed_accessors_fail() {
        let tlv = Tlv::end_of_message();
        assert!(tlv.parse_al_mac().is_err());
        assert!(tlv.parse_link_metric().is_err());
    }

    #[test]
    fn type_codes_round_trip() {
        for t in [0u8, 1, 2, 3, 7, 9, 200] {
            assert_eq!(TlvType::from_code(t).code(), t);
        }
    }
}
