#![forbid(unsafe_code)]
//! # empower-exec
//!
//! A persistent worker pool for the deterministic simulators.
//!
//! The sharded simulator (`empower-sim`) dispatches one job per shard per
//! run. Spawning fresh threads for every run — the `thread::scope` pattern
//! of earlier revisions — charges a full thread spawn/join plus cold
//! allocator state to *every* `execute()`, which benchmarks and the
//! scenario corpus repeat hundreds of times. [`WorkerPool`] amortizes that:
//! threads live for the life of the pool, and each thread owns a reusable
//! **arena** value (scratch buffers, etc.) handed to every job it runs.
//!
//! Determinism rules (enforced repo-wide by `empower-lint`):
//!
//! * Batch results are written to **index-addressed slots** and returned in
//!   submission order — completion order never influences the output
//!   (no completion-order merges, rule D007).
//! * Worker threads are stored [`JoinHandle`]s, joined on drop (no detached
//!   spawns, rule D009).
//! * A panicking job poisons nothing: the payload is captured and re-thrown
//!   on the submitting thread once the batch drains, exactly like
//!   `thread::scope` join semantics.
//!
//! The pool itself is infrastructure, not hot-path simulation state, so it
//! may use `Mutex`/`Condvar` freely (rule D010 scopes the lock ban to the
//! hot-path crates).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work: runs on a worker thread with that thread's arena.
type Job<A> = Box<dyn FnOnce(&mut A) + Send + 'static>;

struct Queue<A> {
    jobs: Mutex<QueueState<A>>,
    available: Condvar,
}

struct QueueState<A> {
    jobs: VecDeque<Job<A>>,
    shutdown: bool,
}

struct BatchState<R> {
    /// One slot per submitted task, filled by task index — never by
    /// completion order.
    results: Vec<Option<R>>,
    remaining: usize,
    /// First captured panic payload, re-thrown by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch<R> {
    state: Mutex<BatchState<R>>,
    done: Condvar,
}

/// A fixed set of long-lived worker threads, each owning an arena of type
/// `A`, executing batches of jobs submitted from any thread.
pub struct WorkerPool<A> {
    queue: Arc<Queue<A>>,
    handles: Vec<JoinHandle<()>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker that panicked mid-job has already routed the payload into
    // its batch; the shared state itself is never left mid-update, so
    // poisoning carries no information here.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<A: Send + 'static> WorkerPool<A> {
    /// Spawns `threads` workers (clamped to ≥ 1), each building its arena
    /// once via `arena`.
    pub fn new<F>(threads: usize, arena: F) -> Self
    where
        F: Fn() -> A + Send + Sync + 'static,
    {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let arena = Arc::new(arena);
        let handles = (0..threads.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || {
                    let mut a = arena();
                    loop {
                        let job = {
                            let mut st = lock(&queue.jobs);
                            loop {
                                if let Some(job) = st.jobs.pop_front() {
                                    break job;
                                }
                                if st.shutdown {
                                    return;
                                }
                                st = queue
                                    .available
                                    .wait(st)
                                    .unwrap_or_else(PoisonError::into_inner);
                            }
                        };
                        job(&mut a);
                    }
                })
            })
            .collect();
        WorkerPool { queue, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs every task on the pool and returns their results **in
    /// submission order**, blocking until the whole batch has drained. If
    /// any task panicked, the first payload is re-thrown here after the
    /// batch completes (remaining tasks still run; their results are
    /// discarded with the batch).
    pub fn run_batch<R, T>(&self, tasks: Vec<T>) -> Vec<R>
    where
        R: Send + 'static,
        T: FnOnce(&mut A) -> R + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut st = lock(&self.queue.jobs);
            for (i, task) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                st.jobs.push_back(Box::new(move |arena: &mut A| {
                    let out = catch_unwind(AssertUnwindSafe(|| task(arena)));
                    let mut bs = lock(&batch.state);
                    match out {
                        Ok(r) => bs.results[i] = Some(r),
                        Err(p) => {
                            if bs.panic.is_none() {
                                bs.panic = Some(p);
                            }
                        }
                    }
                    bs.remaining -= 1;
                    if bs.remaining == 0 {
                        drop(bs);
                        batch.done.notify_all();
                    }
                }));
            }
        }
        self.queue.available.notify_all();

        let mut bs = lock(&batch.state);
        while bs.remaining > 0 {
            bs = batch.done.wait(bs).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(p) = bs.panic.take() {
            drop(bs);
            resume_unwind(p);
        }
        bs.results
            .iter_mut()
            .map(|slot| {
                let Some(r) = slot.take() else {
                    unreachable!("batch drained without panic, every slot is filled")
                };
                r
            })
            .collect()
    }
}

impl<A> Drop for WorkerPool<A> {
    fn drop(&mut self) {
        lock(&self.queue.jobs).shutdown = true;
        self.queue.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(3, || 0u64);
        let tasks: Vec<_> = (0..17)
            .map(|i| {
                move |arena: &mut u64| {
                    *arena += 1;
                    i * 10
                }
            })
            .collect();
        assert_eq!(pool.run_batch(tasks), (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_across_batches_and_reuses_arenas() {
        let pool = WorkerPool::new(2, Vec::<u32>::new);
        for round in 0..5u32 {
            let out = pool.run_batch(vec![
                move |arena: &mut Vec<u32>| {
                    arena.push(round);
                    arena.len()
                };
                4
            ]);
            assert_eq!(out.len(), 4);
            // Arena lengths only grow: the same per-thread vectors serve
            // every round.
            assert!(out.iter().all(|&len| len >= 1));
        }
    }

    #[test]
    fn single_thread_pool_drains_wide_batches() {
        let pool = WorkerPool::new(1, || ());
        let out = pool.run_batch((0..64).map(|i| move |_: &mut ()| i).collect::<Vec<_>>());
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_resurfaces_on_the_submitter() {
        let pool = WorkerPool::new(2, || ());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(
                (0..4)
                    .map(|i| {
                        move |_: &mut ()| {
                            assert!(i != 2, "job 2 fails");
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(caught.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.run_batch(vec![|_: &mut ()| 7]), vec![7]);
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let pool = WorkerPool::new(2, || ());
        let out: Vec<u8> = pool.run_batch(Vec::<fn(&mut ()) -> u8>::new());
        assert!(out.is_empty());
    }
}
