#!/usr/bin/env sh
# Local CI gate. Run from the repo root before sending a change out:
#
#   ./ci.sh          # fmt check + clippy + tier-1 build/test
#   ./ci.sh quick    # skip the release build, debug tests only
#
# Tier-1 (ROADMAP.md): `cargo build --release && cargo test -q` must pass.
set -eu

cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --check

say "clippy, warnings are errors"
cargo clippy --workspace --all-targets -- -D warnings

say "rustdoc, warnings are errors"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

say "empower-lint (determinism & concurrency gate)"
# Domain lints (D001-D011, DESIGN.md §7 and §12): hash containers,
# wall-clock time, ambient-entropy RNGs, partial_cmp().unwrap(), library
# panics, missing #![forbid(unsafe_code)], plus the workspace-aware
# concurrency-determinism rules (mpsc merges, relaxed RMWs, detached
# spawns, hot-path locks, undeclared EMPOWER_* knobs). Grandfathered
# violations live in the baseline ratchet (counts may only decrease);
# the SARIF-style report is archived as a CI artifact in both modes.
ART_DIR="${EMPOWER_CI_ARTIFACT_DIR:-target/ci-artifacts}"
mkdir -p "$ART_DIR"
cargo run -q -p empower-lint -- \
    --baseline crates/lint/baseline.lint --sarif "$ART_DIR/empower-lint.sarif"
echo "lint artifact: $ART_DIR/empower-lint.sarif"

if [ "${1:-}" = "quick" ]; then
    say "tests (debug, equivalence corpora trimmed)"
    # The §3.2 equivalence property test sweeps 50 random topologies by
    # default; 12 keep the quick loop fast while still crossing both
    # topology classes and the restricted-medium query. The simulator
    # engine-equivalence corpus is likewise trimmed to its Fig. 1 prefix
    # plus the first dynamics scenarios, and the workload replay/cross-
    # engine gate to its first scenario; CI's full mode runs everything.
    # --workspace: the repo root is itself a package, so a bare
    # `cargo test` would cover only the root crate's suites and skip the
    # member-crate gates (sim equivalence corpus, datapath graph tests,
    # bench determinism tests).
    EMPOWER_EQUIV_TOPOLOGIES=12 EMPOWER_SIM_EQUIV_SCENARIOS=14 \
        EMPOWER_WORKLOAD_SCENARIOS=1 \
        cargo test -q --workspace
    say "perf gate: simulator hot-path counters vs checked-in budget"
    # Counter-only in quick mode (EMPOWER_SIM_SKIP_TIMING): wall-clock
    # batches of an unoptimized debug build prove nothing, but the
    # deterministic allocation counters gate exactly the same way.
    PERF_JSON="$(mktemp)"
    EMPOWER_SIM_SKIP_TIMING=1 cargo run -q -p empower-bench --bin bench_sim -- \
        --quick --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
else
    say "tier-1: release build"
    # --workspace on both: a bare invocation at the repo root covers only
    # the root package, skipping the member-crate gates and the bench
    # binaries the perf gates below execute.
    cargo build --release --workspace
    say "tier-1: tests"
    cargo test -q --release --workspace
    say "perf gate: exploration-tree counters vs checked-in budget"
    # Deterministic counter gate (DESIGN.md §8): fails when the pinned
    # seeded workload expands more tree nodes than the budget allows or
    # the baseline/optimized expansion ratio drops below its floor. No
    # wall-clock thresholds, so no flakiness.
    PERF_JSON="$(mktemp)"
    target/release/bench_routing --quick \
        --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
    say "perf gate: simulator hot-path counters vs checked-in budget"
    # Full mode: engine equivalence over the whole corpus, the
    # optimized/reference event-dispatch throughput (informational; only
    # the deterministic counters gate) and the complete sharded-simulation
    # scale curve — campus topologies up to 1011 nodes at shard counts
    # 1/2/4/8 with byte-identical reports asserted per row and the
    # 1011-node 4-shard row gated twice by the budget: counter speedup
    # (deterministic) and wall-clock speedup (shard-local views + the
    # persistent pool must beat the single-threaded engine's elapsed
    # time). (The quick lane runs the same gate with the 103-node smoke
    # curve at shards 1 and 4, counters only.)
    PERF_JSON="$(mktemp)"
    target/release/bench_sim \
        --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
fi

if [ "${EMPOWER_MIRI:-}" = "1" ]; then
    # Optional deep lane: run the one threaded module under miri, so the
    # static concurrency rules (D007-D010) get a dynamic cross-check.
    # Requires a nightly toolchain with the miri component; skipped (with
    # a notice) when absent so the lane can be enabled fleet-wide.
    if cargo miri --version >/dev/null 2>&1; then
        say "miri: bench parallel module (EMPOWER_MIRI=1)"
        cargo miri test -p empower-bench parallel
    else
        say "miri lane requested but the miri toolchain is absent — skipped"
    fi
fi

say "scenario smoke test (determinism)"
# Run the example scenario twice; the manifests must be byte-identical.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
if [ "${1:-}" = "quick" ]; then
    EMPOWER="cargo run -q --bin empower --"
else
    EMPOWER=target/release/empower
fi
$EMPOWER scenario run examples/fig12_drop.toml \
    --metrics "$SMOKE_DIR/a.json" >/dev/null
$EMPOWER scenario run examples/fig12_drop.toml \
    --metrics "$SMOKE_DIR/b.json" >/dev/null
cmp "$SMOKE_DIR/a.json" "$SMOKE_DIR/b.json" \
    || { echo "scenario manifests differ between identical runs" >&2; exit 1; }

say "workload smoke test (determinism)"
# Same two-run byte-comparison for the workload DSL's CLI entry point.
$EMPOWER workload run examples/workload_enterprise_rr.toml \
    --metrics "$SMOKE_DIR/wa.json" >/dev/null
$EMPOWER workload run examples/workload_enterprise_rr.toml \
    --metrics "$SMOKE_DIR/wb.json" >/dev/null
cmp "$SMOKE_DIR/wa.json" "$SMOKE_DIR/wb.json" \
    || { echo "workload manifests differ between identical runs" >&2; exit 1; }

if [ "${EMPOWER_SKIP_NET:-}" = "1" ]; then
    say "udp loopback smoke test skipped (EMPOWER_SKIP_NET=1)"
else
    say "udp loopback smoke test (forwarding graph over real sockets)"
    # Two OS processes forward 64 real EMPoWER frames over 127.0.0.1
    # through the same graph nodes the simulator drives (DESIGN.md §10).
    # Sandboxes without loopback sockets can set EMPOWER_SKIP_NET=1.
    if [ "${1:-}" = "quick" ]; then
        UDP_FWD="cargo run -q -p empower-datapath --example udp_forward --"
    else
        cargo build -q --release -p empower-datapath --example udp_forward
        UDP_FWD=target/release/examples/udp_forward
    fi
    # Port 0 = OS-assigned ephemeral port (no collisions between parallel
    # CI jobs); the receiver's `listening` line advertises the real
    # address. EMPOWER_UDP_PORT pins a fixed port when needed.
    UDP_ADDR="127.0.0.1:${EMPOWER_UDP_PORT:-0}"
    RECV_LOG="$SMOKE_DIR/udp_recv.log"
    $UDP_FWD recv "$UDP_ADDR" >"$RECV_LOG" 2>&1 &
    RECV_PID=$!
    # Wait until the receiver owns the socket before offering frames.
    i=0
    until grep -q '^listening' "$RECV_LOG" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "udp receiver never came up:" >&2
            cat "$RECV_LOG" >&2
            kill "$RECV_PID" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    # The bound address (with the discovered port) is what the sender must
    # target, not the possibly-port-0 bind request.
    UDP_PEER="$(sed -n 's/^listening //p' "$RECV_LOG" | head -n 1)"
    [ -n "$UDP_PEER" ] \
        || { echo "udp receiver printed no bound address:" >&2; cat "$RECV_LOG" >&2; exit 1; }
    $UDP_FWD send "$UDP_PEER" >/dev/null
    wait "$RECV_PID" \
        || { echo "udp receiver failed:" >&2; cat "$RECV_LOG" >&2; exit 1; }
    grep -q 'delivered 64 of 64 frames, in order: yes' "$RECV_LOG" \
        || { echo "udp loopback delivery check failed:" >&2; cat "$RECV_LOG" >&2; exit 1; }
    grep -q 'route prices \[Some(0.25), Some(0.5)\]' "$RECV_LOG" \
        || { echo "udp loopback ack price check failed:" >&2; cat "$RECV_LOG" >&2; exit 1; }
fi

say "ci.sh: all gates passed"
