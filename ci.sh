#!/usr/bin/env sh
# Local CI gate. Run from the repo root before sending a change out:
#
#   ./ci.sh          # fmt check + clippy + tier-1 build/test
#   ./ci.sh quick    # skip the release build, debug tests only
#
# Tier-1 (ROADMAP.md): `cargo build --release && cargo test -q` must pass.
set -eu

cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --check

say "clippy, warnings are errors"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" = "quick" ]; then
    say "tests (debug)"
    cargo test -q
else
    say "tier-1: release build"
    cargo build --release
    say "tier-1: tests"
    cargo test -q --release
fi

say "ci.sh: all gates passed"
