#!/usr/bin/env sh
# Local CI gate. Run from the repo root before sending a change out:
#
#   ./ci.sh          # fmt check + clippy + tier-1 build/test
#   ./ci.sh quick    # skip the release build, debug tests only
#
# Tier-1 (ROADMAP.md): `cargo build --release && cargo test -q` must pass.
set -eu

cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$1"; }

say "rustfmt (check only)"
cargo fmt --check

say "clippy, warnings are errors"
cargo clippy --workspace --all-targets -- -D warnings

say "rustdoc, warnings are errors"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

say "empower-lint (determinism & invariant gate)"
# Domain lints (D001-D006, DESIGN.md §7): hash containers, wall-clock
# time, ambient-entropy RNGs, partial_cmp().unwrap(), library panics,
# missing #![forbid(unsafe_code)]. Exits nonzero on any violation.
cargo run -q -p empower-lint

if [ "${1:-}" = "quick" ]; then
    say "tests (debug, equivalence corpora trimmed)"
    # The §3.2 equivalence property test sweeps 50 random topologies by
    # default; 12 keep the quick loop fast while still crossing both
    # topology classes and the restricted-medium query. The simulator
    # engine-equivalence corpus is likewise trimmed to its Fig. 1 prefix
    # plus the first dynamics scenarios; CI's full mode runs everything.
    EMPOWER_EQUIV_TOPOLOGIES=12 EMPOWER_SIM_EQUIV_SCENARIOS=14 cargo test -q
    say "perf gate: simulator hot-path counters vs checked-in budget"
    # Counter-only in quick mode (EMPOWER_SIM_SKIP_TIMING): wall-clock
    # batches of an unoptimized debug build prove nothing, but the
    # deterministic allocation counters gate exactly the same way.
    PERF_JSON="$(mktemp)"
    EMPOWER_SIM_SKIP_TIMING=1 cargo run -q -p empower-bench --bin bench_sim -- \
        --quick --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
else
    say "tier-1: release build"
    cargo build --release
    say "tier-1: tests"
    cargo test -q --release
    say "perf gate: exploration-tree counters vs checked-in budget"
    # Deterministic counter gate (DESIGN.md §8): fails when the pinned
    # seeded workload expands more tree nodes than the budget allows or
    # the baseline/optimized expansion ratio drops below its floor. No
    # wall-clock thresholds, so no flakiness.
    PERF_JSON="$(mktemp)"
    target/release/bench_routing --quick \
        --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
    say "perf gate: simulator hot-path counters vs checked-in budget"
    # Also re-proves engine equivalence on the corpus prefix and reports
    # the optimized/reference event-dispatch throughput (informational;
    # only the deterministic counters gate).
    PERF_JSON="$(mktemp)"
    target/release/bench_sim --quick \
        --budget crates/bench/perf_budget.json --json "$PERF_JSON" >/dev/null
    rm -f "$PERF_JSON"
fi

say "scenario smoke test (determinism)"
# Run the example scenario twice; the manifests must be byte-identical.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
if [ "${1:-}" = "quick" ]; then
    EMPOWER="cargo run -q --bin empower --"
else
    EMPOWER=target/release/empower
fi
$EMPOWER scenario run examples/fig12_drop.toml \
    --metrics "$SMOKE_DIR/a.json" >/dev/null
$EMPOWER scenario run examples/fig12_drop.toml \
    --metrics "$SMOKE_DIR/b.json" >/dev/null
cmp "$SMOKE_DIR/a.json" "$SMOKE_DIR/b.json" \
    || { echo "scenario manifests differ between identical runs" >&2; exit 1; }

say "ci.sh: all gates passed"
