#![forbid(unsafe_code)]
//! `empower` — command-line front end to the reproduction.
//!
//! ```text
//! empower topology residential --seed 7        # generate + print a topology
//! empower routes   residential --seed 7 0 3    # EMPoWER's route combination
//! empower evaluate residential --seed 7 0 3    # all 8 schemes, equilibrium
//! empower simulate residential --seed 7 0 3    # packet-level run (300 s)
//! empower topology testbed                     # the simulated 22-node floor
//! empower scenario run   examples/fig12_drop.toml   # dynamics + faults
//! empower scenario fluid examples/fig12_drop.toml   # quasi-static timeline
//! empower workload run   examples/workload_iot_floor.toml  # workload DSL + SLOs
//! ```
//!
//! `evaluate`, `simulate` and `scenario run` accept `--metrics <path>`: a
//! run manifest (seed, parameters, resilience metrics, full counter
//! snapshot) is written there, byte-identical across same-seed runs.

use empower_core::{RunConfig, Scheme};
use empower_dynamics::{fluid_timeline, run_scenario, Scenario};
use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceMap, InterferenceModel, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::{CounterType, Manifest, Telemetry};

fn usage() -> ! {
    eprintln!(
        "usage: empower <topology|routes|evaluate|simulate> <residential|enterprise|testbed> \
         [--seed S] [--metrics PATH] [src dst]\n\
         \x20      empower scenario <run|fluid> <scenario.toml|.json> [--metrics PATH]\n\
         \x20      empower workload run <workload.toml|.json> [--metrics PATH]"
    );
    std::process::exit(2)
}

struct Args {
    command: String,
    class: String,
    seed: u64,
    metrics: Option<String>,
    endpoints: Option<(u32, u32)>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut seed = 1u64;
    let mut metrics = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--seed" {
            i += 1;
            seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
        } else if argv[i] == "--metrics" {
            i += 1;
            metrics = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
        } else {
            positional.push(argv[i].clone());
        }
        i += 1;
    }
    if positional.len() < 2 {
        usage();
    }
    let endpoints = if positional.len() >= 4 {
        match (positional[2].parse(), positional[3].parse()) {
            (Ok(a), Ok(b)) => Some((a, b)),
            _ => usage(),
        }
    } else {
        None
    };
    Args { command: positional[0].clone(), class: positional[1].clone(), seed, metrics, endpoints }
}

/// Writes the manifest if `--metrics` was given.
fn maybe_write_manifest(args: &Args, experiment: &str, tele: &Telemetry) {
    let Some(path) = &args.metrics else { return };
    let mut m = Manifest::new(experiment);
    m.set("class", args.class.as_str()).set("seed", args.seed).attach_counters(tele);
    write_manifest(&m, path);
}

fn write_manifest(m: &Manifest, path: &str) {
    if let Err(e) = m.write(path) {
        eprintln!("cannot write metrics to {path}: {e}");
        std::process::exit(1);
    }
}

fn build(class: &str, seed: u64) -> (Network, InterferenceMap) {
    let net = match class {
        "residential" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential)).net
        }
        "enterprise" => {
            let mut rng = StdRng::seed_from_u64(seed);
            generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise)).net
        }
        "testbed" => testbed22(seed).net,
        _ => usage(),
    };
    let imap = CarrierSense::default().build_map(&net);
    (net, imap)
}

fn load_scenario(path: &str) -> Scenario {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match Scenario::parse_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn fmt_opt_secs(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_string(), |s| format!("{s:.1} s"))
}

/// `empower scenario run <file>`: packet-level run with fault injection,
/// route monitoring and resilience metrics.
fn scenario_run(args: &Args) {
    let scenario = load_scenario(&args.class);
    let tele = Telemetry::enabled();
    let outcome = match run_scenario(&scenario, &tele) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "scenario {:?}: {} on {}, {:.0} s horizon",
        scenario.name,
        scenario.run.scheme,
        scenario.topology.kind.label(),
        scenario.run.horizon_secs
    );
    println!(
        "{} faults injected, {} route changes, {} fault episodes",
        outcome.faults.len(),
        outcome.reroutes.len(),
        outcome.resilience.len()
    );
    for r in &outcome.reroutes {
        println!("  t={:>7.1}  flow {}  {} → {} routes", r.at, r.flow, r.reason, r.routes);
    }
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "fault", "baseline", "detect", "reconverge", "dip", "lost"
    );
    for m in &outcome.resilience {
        println!(
            "{:>8.1} s {:>7.2} Mbps {:>10} {:>12} {:>7.1} Mbit {:>8}",
            m.fault_at_secs,
            m.baseline_mbps,
            fmt_opt_secs(m.time_to_detect_secs),
            fmt_opt_secs(m.time_to_reconverge_secs),
            m.dip_area_mbit,
            m.packets_lost
        );
    }
    let horizon = scenario.run.horizon_secs;
    let mean =
        outcome.aggregate_series.iter().sum::<f64>() / outcome.aggregate_series.len().max(1) as f64;
    println!("mean aggregate goodput over {horizon:.0} s: {mean:.2} Mbps");

    if let Some(path) = &args.metrics {
        let mut m = Manifest::new("scenario");
        m.set("name", scenario.name.as_str())
            .set("scheme", scenario.run.scheme.label())
            .set("topology", scenario.topology.kind.label())
            .set("seed", scenario.run.seed)
            .set("horizon_secs", horizon)
            .set("faults", outcome.faults.len() as u64)
            .set("reroutes", outcome.reroutes.len() as u64)
            .set("resilience", &outcome.resilience[..])
            .attach_counters(&tele);
        write_manifest(&m, path);
    }
}

/// `empower scenario fluid <file>`: the quasi-static segment timeline.
fn scenario_fluid(args: &Args) {
    let scenario = load_scenario(&args.class);
    let tele = Telemetry::disabled();
    let segments = match fluid_timeline(&scenario, &tele) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "scenario {:?}: {} fluid segments ({} on {})",
        scenario.name,
        segments.len(),
        scenario.run.scheme,
        scenario.topology.kind.label()
    );
    for s in &segments {
        let rates: Vec<String> = s.flow_rates.iter().map(|r| format!("{r:.2}")).collect();
        println!(
            "  [{:>7.1}, {:>7.1})  rates [{}] Mbps  utility {:.3}",
            s.from_secs,
            s.to_secs,
            rates.join(", "),
            s.utility
        );
    }
    if let Some(path) = &args.metrics {
        let mut m = Manifest::new("scenario-fluid");
        m.set("name", scenario.name.as_str())
            .set("scheme", scenario.run.scheme.label())
            .set("segments", &segments[..]);
        write_manifest(&m, path);
    }
}

/// `empower workload run <file>`: compiles a workload DSL document into a
/// deterministic flow program, runs it packet-level and prints the
/// per-client SLO metrics.
fn workload_run(args: &Args) {
    let path = &args.class;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let w = match empower_workload::Workload::parse_str(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let out = match empower_workload::run_workload(&w) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "workload {:?}: {} client groups, {} flows on {}, {:.0} s horizon, seed {}",
        w.name,
        w.clients.len(),
        out.compiled.flows.len(),
        w.topology.kind.label(),
        w.run.horizon_secs,
        w.run.seed
    );
    println!(
        "{:<14} {:>5} {:>9} {:>22} {:>17} {:>6}",
        "client", "flows", "MB", "fct p50/p95/p99 ms", "goodput p50 kbps", "jain"
    );
    for c in &out.slo.clients {
        println!(
            "{:<14} {:>5} {:>9.2} {:>10}/{:>5}/{:>5} {:>17} {:>6}",
            c.label,
            c.flows,
            c.delivered_bytes as f64 / 1e6,
            c.fct_ms.p50,
            c.fct_ms.p95,
            c.fct_ms.p99,
            c.goodput_kbps.p50,
            c.jain_milli,
        );
    }
    if let Some(path) = &args.metrics {
        // The workload manifest already carries configuration, counters
        // and SLO gauges; write it verbatim.
        if let Err(e) = std::fs::write(path, &out.manifest) {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.command == "workload" {
        let argv: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
        let (action, file) = match (argv.get(1), argv.get(2)) {
            (Some(a), Some(f)) => (a.clone(), f.clone()),
            _ => usage(),
        };
        if action != "run" {
            usage();
        }
        workload_run(&Args { class: file, ..args });
        return;
    }
    if args.command == "scenario" {
        // Here `class` is the sub-action and the first endpoint slot held
        // the file path; reparse positionally.
        let argv: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
        let (action, file) = match (argv.get(1), argv.get(2)) {
            (Some(a), Some(f)) => (a.clone(), f.clone()),
            _ => usage(),
        };
        let args = Args { class: file, ..args };
        match action.as_str() {
            "run" => scenario_run(&args),
            "fluid" => scenario_fluid(&args),
            _ => usage(),
        }
        return;
    }
    let (net, imap) = build(&args.class, args.seed);
    match args.command.as_str() {
        "topology" => {
            println!("{} topology, seed {}", args.class, args.seed);
            println!("{} nodes, {} directed links", net.node_count(), net.link_count());
            for n in net.nodes() {
                let mediums: Vec<String> = n.mediums.iter().map(|m| m.label()).collect();
                println!(
                    "  {}  ({:>5.1},{:>5.1})  [{}]",
                    n.id,
                    n.pos.x,
                    n.pos.y,
                    mediums.join("+")
                );
            }
            for l in net.links().iter().filter(|l| l.from < l.to) {
                println!(
                    "  {} <-> {}  {:<6} {:>6.1} Mbps",
                    l.from,
                    l.to,
                    l.medium.label(),
                    l.capacity_mbps
                );
            }
        }
        "routes" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let routes = Scheme::Empower.compute_routes(&net, &imap, NodeId(s), NodeId(d), 5);
            if routes.is_empty() {
                println!("n{s} and n{d} are not connected on PLC/WiFi");
                return;
            }
            println!("EMPoWER combination for n{s} → n{d}:");
            for r in &routes.routes {
                println!("  {}   R(P) = {:.1} Mbps", r.path.render(&net), r.nominal_rate);
            }
            println!("total nominal capacity: {:.1} Mbps", routes.total_rate());
        }
        "evaluate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let tele =
                if args.metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
            println!("{:<12} {:>10}", "scheme", "Mbps");
            let mut rates = Vec::new();
            for scheme in Scheme::ALL {
                let out = RunConfig::new(scheme)
                    .telemetry(tele.clone())
                    .evaluate_equilibrium(&net, &imap, &[(NodeId(s), NodeId(d))])
                    .expect("tolerant mode cannot fail");
                println!("{:<12} {:>10.2}", scheme.label(), out.flow_rates[0]);
                rates.push((scheme.label(), out.flow_rates[0]));
            }
            if args.metrics.is_some() {
                // Counters aggregate across the eight schemes; the rates
                // themselves go in as manifest keys.
                for (label, rate) in &rates {
                    tele.counter(format!("eval/{label}/mbps_x100"), CounterType::Gauge)
                        .set((rate * 100.0).round() as u64);
                }
            }
            maybe_write_manifest(&args, "evaluate", &tele);
        }
        "simulate" => {
            let (s, d) = args.endpoints.unwrap_or_else(|| usage());
            let tele =
                if args.metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
            let flows =
                [(NodeId(s), NodeId(d), TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
            let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
                .telemetry(tele.clone())
                .build_simulation(
                    &net,
                    &imap,
                    &flows,
                    SimConfig { seed: args.seed, ..Default::default() },
                )
                .expect("tolerant mode cannot fail");
            let Some(f) = mapping[0] else {
                println!("n{s} and n{d} are not connected");
                return;
            };
            let report = sim.run(300.0);
            println!(
                "300 s packet-level run: {:.1} Mbps final ({} frames delivered, {} lost)",
                report.final_throughput(f, 10),
                report.flows[f].delivered_bits / SimConfig::default().frame_bits,
                report.flows[f].declared_lost,
            );
            maybe_write_manifest(&args, "simulate", &tele);
        }
        _ => usage(),
    }
}
