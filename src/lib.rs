#![forbid(unsafe_code)]
//! Workspace root crate: re-exports the public facade for examples and integration tests.
pub use empower_core as core;
