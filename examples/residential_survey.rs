//! Residential site survey: generate a randomized 10-node apartment
//! topology (§5.1) and compare every evaluation scheme on a random
//! download flow — the per-home view behind the Fig. 4 CDFs.
//!
//! Run: `cargo run --release --example residential_survey [seed]`

use empower_core::model::topology::residential;
use empower_core::model::{CarrierSense, InterferenceModel};
use empower_core::{RunConfig, Scheme};
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = residential(&mut rng);
    let imap = CarrierSense::default().build_map(&topo.net);

    println!(
        "Residential topology (seed {seed}): {} nodes, {} directed links",
        topo.net.node_count(),
        topo.net.link_count()
    );
    for n in topo.net.nodes() {
        let mediums: Vec<String> = n.mediums.iter().map(|m| m.label()).collect();
        println!(
            "  {}  ({:>5.1}, {:>5.1}) m  [{}] {}",
            n.id,
            n.pos.x,
            n.pos.y,
            mediums.join("+"),
            n.label
        );
    }

    let (src, dst) = topo.sample_flow(&mut rng);
    println!("\nFlow under test: {src} → {dst}\n");
    println!("{:<12} {:>10} {:>8} {:>40}", "scheme", "Mbps", "routes", "route detail");
    for scheme in Scheme::ALL {
        let routes = scheme.compute_routes(&topo.net, &imap, src, dst, 5);
        let out = RunConfig::new(scheme)
            .evaluate_equilibrium(&topo.net, &imap, &[(src, dst)])
            .expect("tolerant mode cannot fail");
        let detail = routes
            .routes
            .first()
            .map(|r| r.path.render(&topo.net))
            .unwrap_or_else(|| "(disconnected)".into());
        println!(
            "{:<12} {:>10.2} {:>8} {:>40}",
            scheme.label(),
            out.flow_rates[0],
            routes.len(),
            detail
        );
        for extra in routes.routes.iter().skip(1) {
            println!("{:>72}", extra.path.render(&topo.net));
        }
    }
    println!("\n(Re-run with a different seed to survey another home.)");
}
