//! Quickstart: the paper's §1 worked example (Figure 1) end to end.
//!
//! A hybrid PLC/WiFi gateway (a), a PLC/WiFi range extender (b) and a
//! WiFi-only laptop (c). The laptop downloads from the gateway. EMPoWER
//! finds two simultaneously-usable routes and balances them optimally:
//! 10 Mbps on the hybrid PLC→WiFi route, ≈ 6.6 Mbps on the two-hop
//! WiFi route — a 66 % improvement over the best single path.
//!
//! Run: `cargo run --release --example quickstart`

use empower_core::model::topology::fig1_scenario;
use empower_core::model::{InterferenceModel, SharedMedium};
use empower_core::telemetry::Telemetry;
use empower_core::{RunConfig, Scheme};

fn main() {
    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);

    println!("Topology: gateway (a) — extender (b) — laptop (c)");
    for link in s.net.links().iter().filter(|l| l.from < l.to) {
        println!(
            "  {} → {} over {:<6} {:>5.0} Mbps",
            link.from,
            link.to,
            link.medium.label(),
            link.capacity_mbps
        );
    }

    // 1. What routes does EMPoWER pick, and at what nominal rates?
    let routes = Scheme::Empower.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
    println!("\nEMPoWER route combination:");
    for r in &routes.routes {
        println!("  {}   R(P) = {:.1} Mbps", r.path.render(&s.net), r.nominal_rate);
    }

    // 2. Run the distributed congestion controller to equilibrium, with
    //    telemetry recording what the controller actually did.
    let flows = [(s.gateway, s.client)];
    let tele = Telemetry::enabled();
    let emp = RunConfig::new(Scheme::Empower)
        .telemetry(tele.clone())
        .evaluate_fluid(&s.net, &imap, &flows)
        .expect("fig. 1 is connected");
    let sp = RunConfig::new(Scheme::Sp)
        .evaluate_fluid(&s.net, &imap, &flows)
        .expect("fig. 1 is connected");

    println!("\nConverged throughput:");
    println!("  single path (SP):  {:>6.2} Mbps", sp.flow_rates[0]);
    println!("  EMPoWER:           {:>6.2} Mbps", emp.flow_rates[0]);
    println!(
        "  gain:              {:>+6.0} %",
        100.0 * (emp.flow_rates[0] / sp.flow_rates[0] - 1.0)
    );
    if let Some(slots) = emp.convergence_slots[0] {
        println!(
            "  converged within 1% of final after {slots} slots (~{:.1} s of 100 ms ACKs)",
            slots as f64 * 0.1
        );
    }

    // 3. The telemetry registry saw the whole run.
    println!(
        "
Telemetry counters:"
    );
    for (name, flavor, value) in &tele.snapshot().counters {
        println!("  {name:<28} {value:>8}  [{}]", flavor.label());
    }
}
