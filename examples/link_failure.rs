//! Failure injection: what happens to a multipath flow when one of its
//! mediums dies mid-transfer?
//!
//! The packet-level simulator runs the Fig. 1 scenario; at t = 120 s the PLC
//! link fails (someone plugged in a hair dryer), and at t = 240 s it comes
//! back. Watch the congestion controller shift the whole flow onto the
//! remaining WiFi route within seconds and shift back after recovery —
//! without recomputing routes and without a central coordinator.
//!
//! Run: `cargo run --release --example link_failure`

use empower_core::model::topology::fig1_scenario;
use empower_core::model::{InterferenceModel, SharedMedium};
use empower_core::sim::TrafficPattern;
use empower_core::{RunConfig, Scheme};

fn main() {
    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);
    let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 360.0 })];
    let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
        .build_simulation(&s.net, &imap, &flows, empower_core::sim::SimConfig::default())
        .expect("fig. 1 is connected");
    let f = mapping[0].expect("connected");

    // Fail the PLC link (both directions) at 120 s, restore at 240 s.
    let plc_cap = s.net.link(s.plc_ab).capacity_mbps;
    let plc_rev = s.net.link(s.plc_ab).reverse.expect("duplex");
    sim.schedule_link_change(120.0, s.plc_ab, 0.0);
    sim.schedule_link_change(120.0, plc_rev, 0.0);
    sim.schedule_link_change(240.0, s.plc_ab, plc_cap);
    sim.schedule_link_change(240.0, plc_rev, plc_cap);

    let report = sim.run(360.0);
    let stats = &report.flows[f];

    println!("t[s]   received Mbps   (PLC fails at 120 s, returns at 240 s)");
    for (t, thr) in stats.throughput_series.iter().enumerate().step_by(10) {
        let bar = "#".repeat((thr / 1.0) as usize);
        println!("{t:>4}   {thr:>8.1}   {bar}");
    }
    println!(
        "\nphase means: before {:.1} | during failure {:.1} | after recovery {:.1} Mbps",
        stats.mean_throughput(80, 119),
        stats.mean_throughput(180, 239),
        stats.mean_throughput(320, 359),
    );
    println!(
        "frames lost in the network during the whole run: {}",
        stats.dropped_in_network + stats.declared_lost
    );
}
