//! IEEE 1905.1 in action: run standard topology discovery over the
//! simulated testbed, rebuild the network from the discovered link metrics,
//! and route on *that* instead of ground truth — EMPoWER deployed on top of
//! the abstraction layer the paper positions it with (§1).
//!
//! Run: `cargo run --release --example discovered_topology`

use empower_core::model::topology::testbed22;
use empower_core::model::{CarrierSense, InterferenceModel, NodeId};
use empower_core::Scheme;
use empower_ieee1905::agent::{parse_link_metric_response, reconstruct_network};
use empower_ieee1905::{AgentConfig, TopologyAgent};

fn main() {
    let truth = testbed22(1);
    let mut agents: Vec<TopologyAgent> = truth
        .net
        .nodes()
        .iter()
        .map(|n| TopologyAgent::new(n.id, AgentConfig::default()))
        .collect();

    // One discovery round: every device multicasts a Topology Discovery
    // CMDU on each interface; everyone in link range hears it.
    for i in 0..agents.len() {
        let sender = agents[i].node();
        let Some(cmdu) = agents[i].poll_discovery(0.0) else { continue };
        let deliveries: Vec<(usize, empower_core::model::Medium)> = truth
            .net
            .out_links(sender)
            .filter(|l| l.is_alive())
            .map(|l| (l.to.index(), l.medium))
            .collect();
        for (to, medium) in deliveries {
            agents[to].on_cmdu(medium, &cmdu, 0.0);
        }
    }

    // Link Metric Responses: each device reports its measured capacities.
    let mut discovered = Vec::new();
    for a in agents.iter_mut() {
        let node = a.node();
        let response = a.link_metric_response(1.0, |to, medium| {
            truth.net.find_link(node, to, medium).map(|l| l.capacity_mbps)
        });
        discovered.extend(parse_link_metric_response(node, &response));
    }
    println!(
        "discovered {} directed links (ground truth has {})",
        discovered.len(),
        truth.net.link_count()
    );

    let rebuilt = reconstruct_network(&truth.net, &discovered);
    let imap = CarrierSense::default().build_map(&rebuilt);
    let (src, dst) = (NodeId(0), NodeId(12)); // paper's Flow 1-13
    let routes = Scheme::Empower.compute_routes(&rebuilt, &imap, src, dst, 5);
    println!("\nEMPoWER routes on the 1905.1-discovered topology ({src} → {dst}):");
    for r in &routes.routes {
        println!("  {}   R(P) = {:.1} Mbps", r.path.render(&rebuilt), r.nominal_rate);
    }
    let truth_imap = CarrierSense::default().build_map(&truth.net);
    let truth_routes = Scheme::Empower.compute_routes(&truth.net, &truth_imap, src, dst, 5);
    println!(
        "\nnominal combination capacity: discovered {:.1} Mbps vs ground truth {:.1} Mbps",
        routes.total_rate(),
        truth_routes.total_rate()
    );
    println!("(difference = the link-metric TLV's 1 Mbps wire granularity)");
}
