//! TCP over the layer-2.5 stack (§6.4): a bulk TCP transfer on the
//! simulated 22-node testbed, plain single-path TCP vs TCP over EMPoWER
//! with δ = 0.3 and destination-side delay equalization.
//!
//! Run: `cargo run --release --example tcp_download [src] [dst]`
//! (node numbers are the paper's 1-based ids; default flow is 9 → 13).

use empower_core::model::topology::testbed22;
use empower_core::model::{CarrierSense, InterferenceModel};
use empower_core::sim::{SimConfig, TrafficPattern};
use empower_core::{RunConfig, Scheme};

fn main() {
    let arg = |i: usize, default: u32| {
        std::env::args().nth(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let (src_no, dst_no) = (arg(1, 9), arg(2, 13));
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let src = t.node(src_no);
    let dst = t.node(dst_no);
    println!("TCP bulk transfer node{src_no} → node{dst_no} on the simulated testbed\n");

    for (label, scheme) in
        [("plain single-path TCP", Scheme::SpWoCc), ("TCP over EMPoWER", Scheme::Empower)]
    {
        let routes = scheme.compute_routes(&t.net, &imap, src, dst, 5);
        let flows = [(src, dst, TrafficPattern::Tcp { start: 0.0, stop: 200.0, size_bytes: 0 })];
        let (mut sim, mapping) = RunConfig::new(scheme)
            .build_simulation(&t.net, &imap, &flows, SimConfig { delta: 0.3, ..Default::default() })
            .expect("tolerant mode cannot fail");
        let Some(f) = mapping[0] else {
            println!("{label}: disconnected");
            continue;
        };
        let report = sim.run(200.0);
        println!("{label}:");
        for r in &routes.routes {
            println!("  route: {}", r.path.render(&t.net));
        }
        println!(
            "  steady throughput (last 100 s): {:.1} Mbps   source drops: {}   reorder losses: {}\n",
            report.flows[f].mean_throughput(100, 200),
            report.flows[f].dropped_at_source,
            report.flows[f].declared_lost,
        );
    }
    println!("(δ = 0.3 leaves the headroom TCP needs; see `ablation_delta` for the sweep.)");
}
