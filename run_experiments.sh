#!/bin/sh
# Regenerates every table and figure of the paper's evaluation.
# Full run takes a few hours on one core; RUNS=... scales the sweeps.
set -x
cd "$(dirname "$0")"
R=results
mkdir -p "$R"
run() { name=$1; shift; ./target/release/"$name" "$@" --json "$R/$name.json" > "$R/$name.txt" 2>&1; }

run fig4_hybrid_cdf  --runs ${RUNS_FIG4:-1000}
run fig5_worst_flows --runs ${RUNS_FIG4:-1000}
run fig6_vs_optimal  --runs ${RUNS_FIG6:-400}
run fig7_utility     --runs ${RUNS_FIG7:-300}
run convergence_table --runs ${RUNS_CONV:-40}
run fig9_example
run fig10_testbed_cdf --runs ${RUNS_FIG10:-50}
run fig11_flow_bars
run table1_downloads --runs ${RUNS_T1:-10}
run fig12_tcp_timeseries
run fig13_tcp_bars
run ablation_routing --runs 200
run ablation_delta
run ablation_delay_eq
run ablation_fairness
echo ALL_EXPERIMENTS_DONE
