//! Property-based tests of the wire-level datapath: header codec, source
//! routes, reorder buffer and the admission scheduler.

use empower_core::datapath::{
    EmpowerHeader, IfaceId, ReorderBuffer, ReorderEvent, RouteChoice, RouteScheduler,
    SourceRoute, HEADER_LEN, MAX_HOPS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every encodable header decodes back to itself, at exactly 20 bytes.
    #[test]
    fn header_roundtrip(
        hops in prop::collection::vec(1u16..=u16::MAX, 1..=MAX_HOPS),
        price in 0.0f32..1000.0,
        seq in any::<u32>(),
    ) {
        let route = SourceRoute::new(
            &hops.iter().map(|&h| IfaceId(h)).collect::<Vec<_>>()
        ).unwrap();
        let mut h = EmpowerHeader::new(route, seq);
        h.price = price;
        let bytes = h.to_bytes();
        prop_assert_eq!(bytes.len(), HEADER_LEN);
        let back = EmpowerHeader::decode(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back, h);
    }

    /// Corrupted buffers never panic: decode returns Ok or Err, never
    /// aborts (the route-gap check is the only structural validation).
    #[test]
    fn header_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = EmpowerHeader::decode(&mut bytes.as_slice());
    }

    /// Reorder buffer: with per-route FIFO arrivals, every sequence number
    /// is eventually delivered exactly once or declared lost exactly once,
    /// and deliveries are strictly increasing.
    #[test]
    fn reorder_accounts_for_every_sequence(
        // Route assignment per seq: true = route 0. Drop mask per seq.
        routing in prop::collection::vec((any::<bool>(), 0u8..10), 1..200),
    ) {
        let mut buf = ReorderBuffer::new(2);
        // Per-route FIFO delivery: partition by route, deliver interleaved
        // (round-robin by position) to simulate two pipes of different
        // speeds. Sequences with drop mask 0 are lost in the network.
        let mut pipes: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut sent = Vec::new();
        for (seq, &(route, drop)) in routing.iter().enumerate() {
            let seq = seq as u32;
            sent.push(seq);
            if drop == 0 {
                continue; // network loss
            }
            pipes[route as usize].push(seq);
        }
        let mut delivered = Vec::new();
        let mut lost = Vec::new();
        let mut idx = [0usize; 2];
        // Interleave: alternate pipes, draining what remains.
        loop {
            let mut progressed = false;
            for r in 0..2 {
                if idx[r] < pipes[r].len() {
                    for ev in buf.accept(r, pipes[r][idx[r]]) {
                        match ev {
                            ReorderEvent::Deliver(s) => delivered.push(s),
                            ReorderEvent::Lost(s) => lost.push(s),
                        }
                    }
                    idx[r] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // The protocol uses no timeouts: a packet can legitimately sit in
        // the buffer while another route is quiet. Flush with later traffic
        // on both routes (what a live flow would do) before accounting.
        let flush = routing.len() as u32 + 1;
        for r in 0..2 {
            for ev in buf.accept(r, flush + r as u32) {
                match ev {
                    ReorderEvent::Deliver(s) if s <= routing.len() as u32 => delivered.push(s),
                    ReorderEvent::Lost(s) if s <= routing.len() as u32 => lost.push(s),
                    _ => {}
                }
            }
        }
        // Deliveries strictly increasing and disjoint from losses.
        prop_assert!(delivered.windows(2).all(|w| w[0] < w[1]));
        for s in &delivered {
            prop_assert!(!lost.contains(s));
        }
        // Everything that arrived was delivered (no arrival is silently
        // swallowed) unless it was declared lost first.
        let arrived: Vec<u32> =
            pipes.iter().flatten().copied().collect();
        for s in arrived {
            prop_assert!(
                delivered.contains(&s) || lost.contains(&s),
                "seq {s} vanished"
            );
        }
    }

    /// The token bucket never admits more than the configured rate allows
    /// (plus one bucket of burst).
    #[test]
    fn scheduler_respects_admitted_rate(
        rate in 0.5f64..80.0,
        offered_hz in 50u32..2000,
    ) {
        let mut s = RouteScheduler::new(1);
        s.set_rates(&[rate]);
        let mut rng = StdRng::seed_from_u64(7);
        let bits = 12_000u64;
        let horizon = 5.0;
        let mut sent_bits = 0u64;
        let dt = 1.0 / offered_hz as f64;
        let mut t = 0.0;
        while t < horizon {
            if let RouteChoice::Route(_) = s.offer(&mut rng, t, bits) {
                sent_bits += bits;
            }
            t += dt;
        }
        let admitted = sent_bits as f64 / 1e6 / horizon;
        prop_assert!(
            admitted <= rate + 0.05 / horizon * 8.0 + 0.5,
            "admitted {admitted} Mbps with rate {rate}"
        );
    }
}
