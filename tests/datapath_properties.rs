//! Property-based tests of the wire-level datapath: header codec, source
//! routes, reorder buffer and the admission scheduler. Randomized cases
//! come from a deterministic seed sweep (the in-tree RNG replaces
//! proptest; the failing case index is in the assertion message).

use empower_core::datapath::{
    EmpowerHeader, IfaceId, ReorderConfig, ReorderEvent, RouteChoice, SchedulerConfig, SourceRoute,
    HEADER_LEN, MAX_HOPS,
};
use empower_model::rng::{Rng, SeedableRng, StdRng};

const CASES: u64 = 64;

/// Every encodable header decodes back to itself, at exactly 20 bytes.
#[test]
fn header_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD001);
    for case in 0..CASES {
        let n_hops = rng.gen_range(1..=MAX_HOPS);
        let hops: Vec<IfaceId> =
            (0..n_hops).map(|_| IfaceId(rng.gen_range(1u16..=u16::MAX))).collect();
        let route = SourceRoute::new(&hops).unwrap();
        let mut h = EmpowerHeader::new(route, rng.gen());
        h.price = rng.gen_range(0.0f64..1000.0) as f32;
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let back = EmpowerHeader::decode(&mut &bytes[..]).unwrap();
        assert_eq!(back, h, "case {case}");
    }
}

/// Corrupted buffers never panic: decode returns Ok or Err, never
/// aborts (the route-gap check is the only structural validation).
#[test]
fn header_decode_is_total() {
    let mut rng = StdRng::seed_from_u64(0xD002);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u32>() as u8).collect();
        let _ = EmpowerHeader::decode(&mut bytes.as_slice());
    }
}

/// Runs the reorder-accounting property on one routing pattern:
/// `(route, drop)` per sequence number, drop == 0 meaning network loss.
fn check_reorder_accounting(routing: &[(bool, u8)], case: u64) {
    let mut buf = ReorderConfig::for_routes(2).build();
    // Per-route FIFO delivery: partition by route, deliver interleaved
    // (round-robin by position) to simulate two pipes of different
    // speeds. Sequences with drop mask 0 are lost in the network.
    let mut pipes: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
    for (seq, &(route, drop)) in routing.iter().enumerate() {
        if drop == 0 {
            continue; // network loss
        }
        pipes[route as usize].push(seq as u32);
    }
    let mut delivered = Vec::new();
    let mut lost = Vec::new();
    let mut idx = [0usize; 2];
    // Interleave: alternate pipes, draining what remains.
    loop {
        let mut progressed = false;
        for r in 0..2 {
            if idx[r] < pipes[r].len() {
                for ev in buf.accept(r, pipes[r][idx[r]]) {
                    match ev {
                        ReorderEvent::Deliver(s) => delivered.push(s),
                        ReorderEvent::Lost(s) => lost.push(s),
                    }
                }
                idx[r] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    // The protocol uses no timeouts: a packet can legitimately sit in
    // the buffer while another route is quiet. Flush with later traffic
    // on both routes (what a live flow would do) before accounting.
    let flush = routing.len() as u32 + 1;
    for r in 0..2 {
        for ev in buf.accept(r, flush + r as u32) {
            match ev {
                ReorderEvent::Deliver(s) if s <= routing.len() as u32 => delivered.push(s),
                ReorderEvent::Lost(s) if s <= routing.len() as u32 => lost.push(s),
                _ => {}
            }
        }
    }
    // Deliveries strictly increasing and disjoint from losses.
    assert!(delivered.windows(2).all(|w| w[0] < w[1]), "case {case}: non-monotone delivery");
    for s in &delivered {
        assert!(!lost.contains(s), "case {case}: seq {s} both delivered and lost");
    }
    // Everything that arrived was delivered (no arrival is silently
    // swallowed) unless it was declared lost first.
    for s in pipes.iter().flatten() {
        assert!(delivered.contains(s) || lost.contains(s), "case {case}: seq {s} vanished");
    }
}

/// Reorder buffer: with per-route FIFO arrivals, every sequence number
/// is eventually delivered exactly once or declared lost exactly once,
/// and deliveries are strictly increasing.
#[test]
fn reorder_accounts_for_every_sequence() {
    // Regression case proptest once shrank to.
    check_reorder_accounting(&[(false, 0), (false, 1)], u64::MAX);
    let mut rng = StdRng::seed_from_u64(0xD003);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..200);
        let routing: Vec<(bool, u8)> =
            (0..len).map(|_| (rng.gen_bool(0.5), rng.gen_range(0u64..10) as u8)).collect();
        check_reorder_accounting(&routing, case);
    }
}

/// The token bucket never admits more than the configured rate allows
/// (plus one bucket of burst).
#[test]
fn scheduler_respects_admitted_rate() {
    let mut meta = StdRng::seed_from_u64(0xD004);
    for case in 0..CASES {
        let rate = meta.gen_range(0.5f64..80.0);
        let offered_hz = meta.gen_range(50u32..2000);
        let mut s = SchedulerConfig::for_routes(1).initial_rates(&[rate]).build();
        let mut rng = StdRng::seed_from_u64(7);
        let bits = 12_000u64;
        let horizon = 5.0;
        let mut sent_bits = 0u64;
        let dt = 1.0 / offered_hz as f64;
        let mut t = 0.0;
        while t < horizon {
            if let RouteChoice::Route(_) = s.offer(&mut rng, t, bits) {
                sent_bits += bits;
            }
            t += dt;
        }
        let admitted = sent_bits as f64 / 1e6 / horizon;
        assert!(
            admitted <= rate + 0.05 / horizon * 8.0 + 0.5,
            "case {case}: admitted {admitted} Mbps with rate {rate}"
        );
    }
}
