//! Cross-crate end-to-end checks: the packet-level simulator, the fluid
//! controller and the centralized solver must agree on the same networks.

use empower_core::model::topology::{fig1_scenario, testbed22};
use empower_core::model::{CarrierSense, InterferenceModel, SharedMedium};
use empower_core::sim::{SimConfig, TrafficPattern};
use empower_core::{FluidEval, RunConfig, Scheme};

#[test]
fn three_evaluation_layers_agree_on_fig1() {
    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);
    let flows = [(s.gateway, s.client)];

    let run = RunConfig::new(Scheme::Empower);
    let eq = run.evaluate_equilibrium(&s.net, &imap, &flows).unwrap();
    let dy = run.evaluate_fluid(&s.net, &imap, &flows).unwrap();
    let sim_flows =
        [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
    let (mut sim, mapping) =
        run.build_simulation(&s.net, &imap, &sim_flows, SimConfig::default()).unwrap();
    let report = sim.run(300.0);
    let pkt = report.final_throughput(mapping[0].unwrap(), 10);

    let reference = 50.0 / 3.0; // the paper's worked optimum
    assert!((eq.flow_rates[0] - reference).abs() < 0.05, "equilibrium {}", eq.flow_rates[0]);
    assert!((dy.flow_rates[0] - reference).abs() < 0.4, "dynamic {}", dy.flow_rates[0]);
    assert!((pkt - reference).abs() < 1.7, "packet sim {pkt}");
}

#[test]
fn packet_sim_tracks_equilibrium_on_the_testbed() {
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let flows = [(t.node(2), t.node(11))];
    let run =
        RunConfig::from_fluid(Scheme::Empower, &FluidEval { delta: 0.05, ..Default::default() });
    let eq = run.evaluate_equilibrium(&t.net, &imap, &flows).unwrap();
    let sim_flows =
        [(t.node(2), t.node(11), TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 })];
    let (mut sim, mapping) = run
        .build_simulation(
            &t.net,
            &imap,
            &sim_flows,
            SimConfig { delta: 0.05, ..Default::default() },
        )
        .unwrap();
    let report = sim.run(300.0);
    let pkt = report.final_throughput(mapping[0].unwrap(), 10);
    assert!(eq.flow_rates[0] > 0.0);
    let ratio = pkt / eq.flow_rates[0];
    assert!(
        (0.8..=1.1).contains(&ratio),
        "packet sim {pkt:.1} vs equilibrium {:.1} (ratio {ratio:.2})",
        eq.flow_rates[0]
    );
}

#[test]
fn two_flows_share_fairly_end_to_end() {
    // Two saturated EMPoWER flows crossing the testbed: the packet sim's
    // allocation must stay within the airtime region and give both flows
    // meaningful throughput (proportional fairness starves no one).
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let sim_flows = [
        (t.node(1), t.node(13), TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 }),
        (t.node(4), t.node(7), TrafficPattern::SaturatedUdp { start: 0.0, stop: 300.0 }),
    ];
    let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
        .build_simulation(
            &t.net,
            &imap,
            &sim_flows,
            SimConfig { delta: 0.05, ..Default::default() },
        )
        .unwrap();
    let report = sim.run(300.0);
    let t1 = report.final_throughput(mapping[0].unwrap(), 10);
    let t2 = report.final_throughput(mapping[1].unwrap(), 10);
    assert!(t1 > 3.0, "flow 1-13 starved: {t1}");
    assert!(t2 > 3.0, "flow 4-7 starved: {t2}");
}

#[test]
fn all_schemes_run_end_to_end_on_the_testbed() {
    let t = testbed22(5);
    let imap = CarrierSense::default().build_map(&t.net);
    for scheme in Scheme::ALL {
        let sim_flows =
            [(t.node(3), t.node(18), TrafficPattern::SaturatedUdp { start: 0.0, stop: 60.0 })];
        let (mut sim, mapping) = RunConfig::new(scheme)
            .build_simulation(&t.net, &imap, &sim_flows, SimConfig::default())
            .unwrap();
        if let Some(f) = mapping[0] {
            let report = sim.run(60.0);
            assert!(report.flows[f].delivered_bits > 0, "{scheme} moved no data");
        }
    }
}

#[test]
fn route_recomputation_rescues_a_single_path_flow() {
    // The §3.2 failure story end to end: an SP flow rides the hybrid
    // PLC→WiFi route; the PLC link dies; the RouteMonitor notices, the
    // routes are recomputed (~50 ms in the paper), the simulator swaps
    // them in, and traffic resumes on the all-WiFi route.
    use empower_core::monitor::{RecomputeReason, RouteMonitor};
    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);
    let routes = Scheme::Sp.compute_routes(&s.net, &imap, s.gateway, s.client, 5);
    // Both gateway→client routes have capacity 10; whichever SP picked,
    // kill its first link so the flow must be re-routed.
    let victim = routes.routes[0].path.links()[0];
    let mut monitor = RouteMonitor::new(&s.net, Scheme::Sp, s.gateway, s.client, &routes);

    let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 400.0 })];
    let (mut sim, mapping) = RunConfig::new(Scheme::Sp)
        .build_simulation(&s.net, &imap, &flows, SimConfig::default())
        .unwrap();
    let f = mapping[0].unwrap();
    let rev = s.net.link(victim).reverse.unwrap();
    sim.schedule_link_change(120.0, victim, 0.0);
    sim.schedule_link_change(120.0, rev, 0.0);

    // Phase 1: healthy.
    sim.run_until(120.5);
    assert_eq!(monitor.check(sim.network()), Some(RecomputeReason::LinkFailure));
    let new_routes = monitor.recompute(sim.network(), &imap);
    assert!(!new_routes.is_empty());
    assert!(!new_routes.routes[0].path.uses_link(victim));
    sim.replace_routes(f, new_routes.paths());

    // Phase 2: recovered on WiFi.
    sim.run_until(400.0);
    let report = sim.report(400.0);
    let before = report.flows[f].mean_throughput(60, 119);
    let during_gap = report.flows[f].mean_throughput(121, 130);
    let after = report.flows[f].mean_throughput(250, 399);
    assert!(before > 8.5, "healthy phase {before}");
    assert!(after > 8.0, "recovered phase {after} (WiFi route capacity 10)");
    let _ = during_gap; // transition dip is expected and unasserted
}
