//! Integration tests for the dynamics subsystem: serialization round
//! trips that replay bit-identically, and the §3.2 recovery story — a
//! mid-run link failure must trigger a reroute that restores goodput.

use empower_core::Scheme;
use empower_dynamics::{
    run_scenario, run_scenario_on, FlowSpec, GeneratorSpec, PatternSpec, Perturbation, RunSpec,
    Scenario, TimedPerturbation, TopologyKind, TopologySpec,
};
use empower_model::topology::fig1_scenario;
use empower_model::{InterferenceModel, SharedMedium};
use empower_telemetry::Telemetry;

fn churny_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "churny".into(),
        topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
        run: RunSpec {
            scheme: Scheme::Empower,
            seed,
            horizon_secs: 40.0,
            poll_secs: 0.5,
            delta: 0.0,
            recovery_fraction: 0.9,
        },
        flows: vec![FlowSpec {
            src: 0,
            dst: 2,
            pattern: PatternSpec::Saturated { start: 0.0, stop: 40.0 },
        }],
        events: vec![
            TimedPerturbation {
                at: 12.0,
                what: Perturbation::Capacity { link: 2, capacity_mbps: 3.0, both: true },
            },
            TimedPerturbation {
                at: 25.0,
                what: Perturbation::LinkUp { link: 2, capacity_mbps: None, both: true },
            },
        ],
        generators: vec![GeneratorSpec::MarkovOnOff {
            link: 0,
            mean_up_secs: 15.0,
            mean_down_secs: 3.0,
            from: 0.0,
            until: None,
            both: true,
        }],
    }
}

/// The property the scenario format exists for: serialize → reparse →
/// replay produces the byte-identical telemetry trace, across seeds.
#[test]
fn toml_round_trip_replays_to_an_identical_trace() {
    for seed in [1u64, 7, 42] {
        let original = churny_scenario(seed);
        let reparsed = Scenario::parse_str(&original.to_toml()).expect("round trip parses");
        assert_eq!(reparsed, original, "seed {seed}: TOML round trip is identity");

        let run = |s: &Scenario| {
            let tele = Telemetry::enabled();
            run_scenario(s, &tele).expect("scenario runs");
            (tele.snapshot(), tele.trace_jsonl())
        };
        let (snap_a, trace_a) = run(&original);
        let (snap_b, trace_b) = run(&reparsed);
        assert_eq!(snap_a, snap_b, "seed {seed}: counter snapshots diverge");
        assert_eq!(trace_a, trace_b, "seed {seed}: telemetry traces diverge");
        assert!(trace_a.contains("dynamics"), "seed {seed}: the driver recorded dynamics events");
    }
}

/// JSON is the second wire format; it must round trip through the same
/// typed model.
#[test]
fn json_and_toml_agree_on_the_same_scenario() {
    let s = churny_scenario(3);
    let from_json = Scenario::parse_str(&s.to_json().to_string_pretty()).expect("JSON parses");
    let from_toml = Scenario::parse_str(&s.to_toml()).expect("TOML parses");
    assert_eq!(from_json, from_toml);
}

/// §3.2: a mid-run link failure on the active route must be detected by
/// the route monitor and rerouted around, with goodput recovering to at
/// least 90 % of the pre-fault level before the horizon.
#[test]
fn link_down_forces_a_reroute_and_goodput_recovers() {
    // Single path (SP) on fig1 picks the two-hop WiFi route (cost 1/15 +
    // 1/30 < 1/10 + 1/30); killing the gateway↔extender WiFi link leaves
    // the PLC alternative, whose path capacity is the same 10 Mb/s.
    let fault_at = 30.0;
    let horizon = 120.0;
    let scenario = Scenario {
        name: "wifi backhaul dies".into(),
        topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
        run: RunSpec {
            scheme: Scheme::Sp,
            seed: 1,
            horizon_secs: horizon,
            poll_secs: 0.5,
            delta: 0.0,
            recovery_fraction: 0.9,
        },
        flows: vec![FlowSpec {
            src: 0,
            dst: 2,
            pattern: PatternSpec::Saturated { start: 0.0, stop: horizon },
        }],
        events: vec![TimedPerturbation {
            at: fault_at,
            what: Perturbation::LinkDown { link: 2, both: true },
        }],
        generators: vec![],
    };
    let fig1 = fig1_scenario();
    let imap = SharedMedium.build_map(&fig1.net);
    let tele = Telemetry::enabled();
    let outcome = run_scenario_on(&scenario, &fig1.net, &imap, &tele).expect("scenario runs");

    // The monitor saw the failure and installed a replacement route.
    assert!(
        outcome.reroutes.iter().any(|r| r.reason == "link_failure" && r.routes > 0),
        "expected a link-failure reroute, got {:?}",
        outcome.reroutes
    );
    let m = &outcome.resilience[0];
    assert_eq!(m.fault_at_secs, fault_at);
    assert!(m.time_to_detect_secs.is_some(), "the monitor never triggered");
    assert!(m.time_to_detect_secs.unwrap() <= 1.0, "detection took {:?}", m.time_to_detect_secs);

    // Goodput is back to ≥ 90 % of the pre-fault baseline.
    let series = &outcome.aggregate_series;
    let pre = series[(fault_at as usize - 10)..fault_at as usize].iter().sum::<f64>() / 10.0;
    let tail = &series[series.len() - 20..];
    let recovered = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        recovered >= 0.9 * pre,
        "goodput did not recover: pre-fault {pre:.2} Mbps, tail {recovered:.2} Mbps"
    );
    assert!(
        m.time_to_reconverge_secs.is_some(),
        "reconvergence never detected (baseline {:.2}, series tail {:?})",
        m.baseline_mbps,
        &series[series.len() - 5..]
    );
}

/// A node crash takes every adjacent link down; recovery restores the
/// pre-crash capacities and the flow comes back from disconnection.
#[test]
fn node_crash_disconnects_and_recovery_reconnects() {
    let horizon = 60.0;
    let scenario = Scenario {
        name: "extender reboots".into(),
        topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
        run: RunSpec {
            scheme: Scheme::Empower,
            seed: 1,
            horizon_secs: horizon,
            poll_secs: 0.5,
            delta: 0.0,
            recovery_fraction: 0.5,
        },
        flows: vec![FlowSpec {
            src: 0,
            dst: 2,
            pattern: PatternSpec::Saturated { start: 0.0, stop: horizon },
        }],
        // Node 1 is the extender: every fig1 path crosses it, so the flow
        // is fully disconnected until the node returns.
        events: vec![
            TimedPerturbation { at: 20.0, what: Perturbation::NodeDown { node: 1 } },
            TimedPerturbation { at: 35.0, what: Perturbation::NodeUp { node: 1 } },
        ],
        generators: vec![],
    };
    let outcome = run_scenario(&scenario, &Telemetry::disabled()).expect("scenario runs");
    assert!(
        outcome.reroutes.iter().any(|r| r.routes == 0),
        "the crash should leave the flow without routes: {:?}",
        outcome.reroutes
    );
    let reconnect = outcome
        .reroutes
        .iter()
        .find(|r| r.reason == "reconnected")
        .expect("the flow reconnects after the node recovers");
    assert!(reconnect.at >= 35.0 && reconnect.routes > 0);
    // Traffic actually flows again after the reconnect.
    let tail = &outcome.aggregate_series[50..];
    assert!(
        tail.iter().sum::<f64>() / tail.len() as f64 > 1.0,
        "no goodput after recovery: {tail:?}"
    );
}

/// Two identical CLI-style runs must write byte-identical manifests —
/// checked here at the outcome level (the ci.sh smoke test covers the
/// binary itself).
#[test]
fn same_seed_runs_are_bit_identical() {
    let s = churny_scenario(5);
    let run = |s: &Scenario| {
        let tele = Telemetry::enabled();
        let o = run_scenario(s, &tele).expect("runs");
        (o.aggregate_series.clone(), o.reroutes.clone(), tele.trace_jsonl())
    };
    assert_eq!(run(&s), run(&s));
}
