//! The telemetry acceptance property: two runs with the same seed must
//! produce *byte-identical* observability output — counter snapshots,
//! trace streams, and rendered manifests. Virtual time (not wall clock)
//! stamps every record, so nothing here may depend on the host.

use empower_bench::sweep::run_one_traced;
use empower_core::model::topology::{fig1_scenario, testbed22};
use empower_core::model::{CarrierSense, InterferenceModel, SharedMedium};
use empower_core::sim::{SimConfig, TrafficPattern};
use empower_core::telemetry::{Manifest, Telemetry};
use empower_core::{FluidEval, RunConfig, Scheme};
use empower_model::topology::random::TopologyClass;

/// Renders everything observable about a registry into one string.
fn observe(tele: &Telemetry, experiment: &str) -> String {
    let mut m = Manifest::new(experiment);
    m.attach_counters(tele);
    format!("{}\n---\n{}", m.render(), tele.trace_jsonl())
}

#[test]
fn fluid_sweep_telemetry_is_byte_identical_across_same_seed_runs() {
    let schemes = [Scheme::Empower, Scheme::Sp, Scheme::SpWifi];
    let params = FluidEval::default();
    let observed: Vec<String> = (0..2)
        .map(|_| {
            let tele = Telemetry::enabled();
            for seed in [11u64, 12, 13] {
                run_one_traced(TopologyClass::Residential, seed, 1, &schemes, &params, &tele);
            }
            observe(&tele, "fluid_sweep")
        })
        .collect();
    assert_eq!(observed[0], observed[1]);
    // The equilibrium solver records route counts (the slotted-controller
    // counters only appear under `evaluate_fluid`).
    assert!(observed[0].contains("eval/flows"), "counters present");
    assert!(observed[0].contains("sweep/runs"), "sweep tally present");
}

#[test]
fn packet_sim_telemetry_is_byte_identical_across_same_seed_runs() {
    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);
    let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 30.0 })];
    let observed: Vec<String> = (0..2)
        .map(|_| {
            let tele = Telemetry::enabled();
            let (mut sim, _) = RunConfig::new(Scheme::Empower)
                .telemetry(tele.clone())
                .build_simulation(
                    &s.net,
                    &imap,
                    &flows,
                    SimConfig { seed: 9, ..Default::default() },
                )
                .unwrap();
            sim.run(30.0);
            observe(&tele, "fig1_packet")
        })
        .collect();
    assert_eq!(observed[0], observed[1]);
    let snap_line = &observed[0];
    for name in ["mac/grants", "datapath/reorder_delivered", "flow/0/acks_sent"] {
        assert!(snap_line.contains(name), "{name} missing from manifest");
    }
}

#[test]
fn different_seeds_actually_change_the_telemetry() {
    // Guards against the vacuous version of the property above (e.g. a
    // registry that never records anything would also be "identical").
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let flows = [(t.node(2), t.node(11), TrafficPattern::SaturatedUdp { start: 0.0, stop: 20.0 })];
    let observed: Vec<String> = [3u64, 4]
        .iter()
        .map(|&seed| {
            let tele = Telemetry::enabled();
            let (mut sim, _) = RunConfig::new(Scheme::Empower)
                .telemetry(tele.clone())
                .build_simulation(&t.net, &imap, &flows, SimConfig { seed, ..Default::default() })
                .unwrap();
            sim.run(20.0);
            observe(&tele, "seed_sensitivity")
        })
        .collect();
    assert_ne!(observed[0], observed[1], "MAC jitter is seeded; traces must differ");
}

#[test]
fn streamed_trace_file_matches_the_in_memory_ring() {
    let dir = std::env::temp_dir().join("empower_telemetry_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let path_s = path.to_str().unwrap();

    let s = fig1_scenario();
    let imap = SharedMedium.build_map(&s.net);
    let flows = [(s.gateway, s.client, TrafficPattern::SaturatedUdp { start: 0.0, stop: 10.0 })];
    let tele = Telemetry::enabled();
    tele.stream_trace_to(path_s).unwrap();
    let (mut sim, _) = RunConfig::new(Scheme::Empower)
        .telemetry(tele.clone())
        .build_simulation(&s.net, &imap, &flows, SimConfig::default())
        .unwrap();
    sim.run(10.0);
    tele.flush();
    let streamed = std::fs::read_to_string(path_s).unwrap();
    assert_eq!(tele.trace_evicted(), 0, "ring did not wrap in this short run");
    assert_eq!(streamed, tele.trace_jsonl());
    std::fs::remove_file(path_s).ok();
}
