//! Property-based tests of the paper's core invariants, spanning crates.
//! Each property sweeps a deterministic seed list (the in-tree RNG
//! replaces proptest; the failing seed is in the assertion message).

use empower_core::model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_core::model::{CarrierSense, InterferenceModel, Path};
use empower_core::routing::{best_combination, MultipathConfig, RouteQuery};
use empower_core::Scheme;
use empower_model::rng::{Rng, SeedableRng, StdRng};

const CASES: u64 = 24;

fn seeds(meta_seed: u64, below: u64) -> impl Iterator<Item = u64> {
    let mut meta = StdRng::seed_from_u64(meta_seed);
    (0..CASES).map(move |_| meta.gen_range(0..below))
}

/// Lemma 1 / R(P): a path's self-interference-aware capacity never
/// exceeds its weakest link, and is positive whenever all links live.
#[test]
fn path_capacity_is_bounded_by_bottleneck() {
    for seed in seeds(0xC001, 5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential));
        let imap = CarrierSense::default().build_map(&topo.net);
        let (src, dst) = topo.sample_flow(&mut rng);
        let routes = Scheme::Empower.compute_routes(&topo.net, &imap, src, dst, 5);
        for r in &routes.routes {
            let cap = r.path.capacity(&topo.net, &imap);
            let min_link = r
                .path
                .links()
                .iter()
                .map(|&l| topo.net.link(l).capacity_mbps)
                .fold(f64::INFINITY, f64::min);
            assert!(cap > 0.0, "seed {seed}");
            assert!(cap <= min_link + 1e-9, "seed {seed}: cap {cap} > min link {min_link}");
        }
    }
}

/// The §3.2 exploration tree never does worse than the single best
/// isolated route, and the nominal rates it reports are feasible under
/// constraint (2).
#[test]
fn multipath_dominates_single_path_and_is_feasible() {
    for seed in seeds(0xC002, 5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential));
        let imap = CarrierSense::default().build_map(&topo.net);
        let (src, dst) = topo.sample_flow(&mut rng);
        let q = RouteQuery::new(src, dst).with_mediums(&Scheme::Empower.mediums());
        let single = best_combination(
            &topo.net,
            &imap,
            &q,
            &MultipathConfig { max_depth: 1, ..Default::default() },
        );
        let multi = best_combination(&topo.net, &imap, &q, &MultipathConfig::default());
        assert!(multi.total_rate() >= single.total_rate() - 1e-9, "seed {seed}");
        // Nominal rates respect the airtime constraint.
        let mut ledger = empower_core::model::AirtimeLedger::new(&topo.net);
        for r in &multi.routes {
            ledger.add_route(&r.path, r.nominal_rate);
        }
        assert!(
            ledger.max_domain_airtime(&topo.net, &imap) <= 1.0 + 1e-6,
            "seed {seed}: nominal combination violates constraint (2)"
        );
    }
}

/// Scheme dominance: EMPoWER ≥ SP and EMPoWER ≥ SP-WiFi at equilibrium
/// (more mediums / more routes never hurt a single flow), and the
/// centralized references bound EMPoWER.
#[test]
fn scheme_partial_order_holds() {
    for seed in seeds(0xC003, 2000) {
        let (net, imap, flows) =
            empower_bench::sweep::make_instance(TopologyClass::Residential, seed, 1);
        let eq = |scheme| {
            empower_core::RunConfig::new(scheme).evaluate_equilibrium(&net, &imap, &flows).unwrap()
        };
        let emp = eq(Scheme::Empower);
        let sp = eq(Scheme::Sp);
        let spw = eq(Scheme::SpWifi);
        assert!(emp.flow_rates[0] >= sp.flow_rates[0] - 0.05, "seed {seed}: EMPoWER < SP");
        assert!(emp.flow_rates[0] >= spw.flow_rates[0] - 0.05, "seed {seed}: EMPoWER < SP-WiFi");
        let opt = empower_bench::sweep::reference(
            &net,
            &imap,
            &flows,
            empower_core::baselines::RegionKind::Cliques,
            0.0,
        );
        let cons = empower_bench::sweep::reference(
            &net,
            &imap,
            &flows,
            empower_core::baselines::RegionKind::Conservative,
            0.0,
        );
        assert!(opt.flow_rates[0] + 1e-6 >= cons.flow_rates[0], "seed {seed}");
    }
}

/// Validated paths survive a render/nodes round trip and stay loop-free.
#[test]
fn computed_routes_are_simple_paths() {
    for seed in seeds(0xC004, 5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise));
        let imap = CarrierSense::default().build_map(&topo.net);
        let (src, dst) = topo.sample_flow(&mut rng);
        for scheme in [Scheme::Empower, Scheme::Mp2bp, Scheme::MpMwifi] {
            for path in scheme.compute_routes(&topo.net, &imap, src, dst, 5).paths() {
                // Re-validate through the strict constructor.
                let again = Path::new(&topo.net, path.links().to_vec());
                assert!(again.is_ok(), "seed {seed}: scheme {scheme} produced an invalid path");
                assert_eq!(path.source(&topo.net), src, "seed {seed}");
                assert_eq!(path.destination(&topo.net), dst, "seed {seed}");
                assert!(path.hop_count() <= empower_core::datapath::MAX_HOPS, "seed {seed}");
            }
        }
    }
}
