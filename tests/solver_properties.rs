//! Cross-validation of the optimization kernels: the simplex LP solver, the
//! Frank–Wolfe utility maximizer and the exact MWIS branch-and-bound are
//! checked against brute force on randomly generated small instances.

use empower_core::baselines::{
    max_weight_independent_set, maximal_cliques, solve_lp, ConflictGraph,
};
use proptest::prelude::*;

/// Brute-force MWIS by enumerating all subsets (n ≤ 16).
fn mwis_brute(adj: &[Vec<bool>], weights: &[f64]) -> f64 {
    let n = weights.len();
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        let mut ok = true;
        let mut w = 0.0;
        for i in 0..n {
            if mask & (1 << i) == 0 {
                continue;
            }
            w += weights[i];
            for j in (i + 1)..n {
                if mask & (1 << j) != 0 && adj[i][j] {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        if ok && w > best {
            best = w;
        }
    }
    best
}

/// Builds a ConflictGraph straight from an adjacency matrix (test-only
/// back door: the public constructor takes an interference map, so we
/// rebuild through sorted neighbor lists by hand).
fn graph_from_matrix(adj: &[Vec<bool>]) -> ConflictGraph {
    // ConflictGraph has no public from-adjacency constructor; emulate one
    // via an InterferenceMap would drag in a Network. Instead exploit that
    // MWIS only needs `conflicts`, which we can test through a tiny network
    // — or simply re-verify on the library's own graphs below. Here we
    // construct the graph through the public API of empower_model with a
    // synthetic single-medium network where interference is explicit.
    use empower_core::model::{
        InterferenceMap, InterferenceModel, Link, Medium, Network, NetworkBuilder, Point,
    };
    struct MatrixModel(Vec<Vec<bool>>);
    impl InterferenceModel for MatrixModel {
        fn interferes(&self, _net: &Network, a: &Link, b: &Link) -> bool {
            a.id == b.id || self.0[a.id.index()][b.id.index()]
        }
    }
    let n = adj.len();
    let mut b = NetworkBuilder::new();
    // One hub + n satellites: link i = hub → satellite i (directed only).
    let hub = b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1], None);
    for i in 0..n {
        let sat = b.add_node(Point::new(i as f64 + 1.0, 0.0), vec![Medium::WIFI1], None);
        b.add_link(hub, sat, Medium::WIFI1, 10.0);
    }
    let net = b.build();
    let imap = InterferenceMap::build(&net, &MatrixModel(adj.to_vec()));
    ConflictGraph::from_interference(&imap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact MWIS equals subset-enumeration brute force.
    #[test]
    fn mwis_matches_brute_force(
        n in 2usize..10,
        edges in prop::collection::vec(any::<bool>(), 45),
        raw_weights in prop::collection::vec(0u32..100, 10),
    ) {
        let mut adj = vec![vec![false; n]; n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                adj[i][j] = edges[k % edges.len()];
                adj[j][i] = adj[i][j];
                k += 1;
            }
        }
        let weights: Vec<f64> = (0..n).map(|i| raw_weights[i] as f64 / 10.0).collect();
        let g = graph_from_matrix(&adj);
        let (_, got) = max_weight_independent_set(&g, &weights);
        let want = mwis_brute(&adj, &weights);
        prop_assert!((got - want).abs() < 1e-9, "mwis {got} vs brute {want}");
    }

    /// Every maximal clique is a clique, is maximal, and the clique cover
    /// includes every edge.
    #[test]
    fn bron_kerbosch_invariants(
        n in 2usize..9,
        edges in prop::collection::vec(any::<bool>(), 36),
    ) {
        let mut adj = vec![vec![false; n]; n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                adj[i][j] = edges[k % edges.len()];
                adj[j][i] = adj[i][j];
                k += 1;
            }
        }
        let g = graph_from_matrix(&adj);
        let cliques = maximal_cliques(&g);
        for c in &cliques {
            // Clique: all pairs adjacent.
            for (ai, &a) in c.iter().enumerate() {
                for &b in &c[ai + 1..] {
                    prop_assert!(g.conflicts(a, b), "non-edge in clique");
                }
            }
            // Maximal: no vertex outside is adjacent to all members.
            for v in 0..n {
                if !c.contains(&v) {
                    let extends = c.iter().all(|&u| g.conflicts(u, v));
                    prop_assert!(!extends, "clique {c:?} extensible by {v}");
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if adj[a][b] {
                    prop_assert!(
                        cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                        "edge ({a},{b}) uncovered"
                    );
                }
            }
        }
    }

    /// LP optimality certificate: the simplex solution is feasible, and no
    /// single-coordinate feasible increase improves the objective (local
    /// optimality, which for LPs over ≤-constraints with c ≥ 0 follows
    /// from global optimality; we additionally compare with a dense grid
    /// on 2-variable instances below).
    #[test]
    fn simplex_solutions_are_feasible_and_tight(
        c in prop::collection::vec(0.0f64..5.0, 2..5),
        rows in prop::collection::vec(prop::collection::vec(0.1f64..3.0, 4), 1..5),
        b in prop::collection::vec(0.5f64..4.0, 5),
    ) {
        let n = c.len();
        let a: Vec<Vec<f64>> = rows.iter().map(|r| r[..n].to_vec()).collect();
        let b = &b[..a.len()];
        let out = solve_lp(&c, &a, b).expect("bounded: all coefficients positive");
        // Feasible.
        for (row, &bi) in a.iter().zip(b) {
            let lhs: f64 = row.iter().zip(&out.x).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= bi + 1e-7, "constraint violated: {lhs} > {bi}");
        }
        // No coordinate can be pushed further without violating something
        // (complementary slackness corollary for c > 0).
        for j in 0..n {
            if c[j] <= 1e-9 {
                continue;
            }
            let headroom = a
                .iter()
                .zip(b)
                .map(|(row, &bi)| {
                    let lhs: f64 = row.iter().zip(&out.x).map(|(ai, xi)| ai * xi).sum();
                    if row[j] > 1e-12 { (bi - lhs) / row[j] } else { f64::INFINITY }
                })
                .fold(f64::INFINITY, f64::min);
            prop_assert!(headroom < 1e-6, "variable {j} had headroom {headroom}");
        }
    }
}
