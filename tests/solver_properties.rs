//! Cross-validation of the optimization kernels: the simplex LP solver, the
//! Frank–Wolfe utility maximizer and the exact MWIS branch-and-bound are
//! checked against brute force on randomly generated small instances.
//! Instances come from a deterministic seed sweep (the in-tree RNG
//! replaces proptest; the failing case index is in the assertion message).

// Adjacency matrices are walked by (i, j) index pairs with j > i; the
// iterator forms clippy suggests obscure the symmetry being asserted.
#![allow(clippy::needless_range_loop)]

use empower_core::baselines::{
    max_weight_independent_set, maximal_cliques, solve_lp, ConflictGraph,
};
use empower_model::rng::{Rng, SeedableRng, StdRng};

const CASES: u64 = 64;

/// Brute-force MWIS by enumerating all subsets (n ≤ 16).
fn mwis_brute(adj: &[Vec<bool>], weights: &[f64]) -> f64 {
    let n = weights.len();
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        let mut ok = true;
        let mut w = 0.0;
        for i in 0..n {
            if mask & (1 << i) == 0 {
                continue;
            }
            w += weights[i];
            for j in (i + 1)..n {
                if mask & (1 << j) != 0 && adj[i][j] {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        if ok && w > best {
            best = w;
        }
    }
    best
}

/// Draws a random symmetric adjacency matrix on `n` vertices.
fn random_adjacency(rng: &mut StdRng, n: usize) -> Vec<Vec<bool>> {
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            adj[i][j] = rng.gen_bool(0.5);
            adj[j][i] = adj[i][j];
        }
    }
    adj
}

/// Builds a ConflictGraph straight from an adjacency matrix (test-only
/// back door: the public constructor takes an interference map, so we
/// rebuild through sorted neighbor lists by hand).
fn graph_from_matrix(adj: &[Vec<bool>]) -> ConflictGraph {
    // ConflictGraph has no public from-adjacency constructor; emulate one
    // via an InterferenceMap would drag in a Network. Instead exploit that
    // MWIS only needs `conflicts`, which we can test through a tiny network
    // — or simply re-verify on the library's own graphs below. Here we
    // construct the graph through the public API of empower_model with a
    // synthetic single-medium network where interference is explicit.
    use empower_core::model::{
        InterferenceMap, InterferenceModel, Link, Medium, Network, NetworkBuilder, Point,
    };
    struct MatrixModel(Vec<Vec<bool>>);
    impl InterferenceModel for MatrixModel {
        fn interferes(&self, _net: &Network, a: &Link, b: &Link) -> bool {
            a.id == b.id || self.0[a.id.index()][b.id.index()]
        }
    }
    let n = adj.len();
    let mut b = NetworkBuilder::new();
    // One hub + n satellites: link i = hub → satellite i (directed only).
    let hub = b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1], None);
    for i in 0..n {
        let sat = b.add_node(Point::new(i as f64 + 1.0, 0.0), vec![Medium::WIFI1], None);
        b.add_link(hub, sat, Medium::WIFI1, 10.0);
    }
    let net = b.build();
    let imap = InterferenceMap::build(&net, &MatrixModel(adj.to_vec()));
    ConflictGraph::from_interference(&imap)
}

/// Exact MWIS equals subset-enumeration brute force.
#[test]
fn mwis_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xE001);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..10);
        let adj = random_adjacency(&mut rng, n);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0u64..100) as f64 / 10.0).collect();
        let g = graph_from_matrix(&adj);
        let (_, got) = max_weight_independent_set(&g, &weights);
        let want = mwis_brute(&adj, &weights);
        assert!((got - want).abs() < 1e-9, "case {case}: mwis {got} vs brute {want}");
    }
}

/// Every maximal clique is a clique, is maximal, and the clique cover
/// includes every edge.
#[test]
fn bron_kerbosch_invariants() {
    let mut rng = StdRng::seed_from_u64(0xE002);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..9);
        let adj = random_adjacency(&mut rng, n);
        let g = graph_from_matrix(&adj);
        let cliques = maximal_cliques(&g);
        for c in &cliques {
            // Clique: all pairs adjacent.
            for (ai, &a) in c.iter().enumerate() {
                for &b in &c[ai + 1..] {
                    assert!(g.conflicts(a, b), "case {case}: non-edge in clique");
                }
            }
            // Maximal: no vertex outside is adjacent to all members.
            for v in 0..n {
                if !c.contains(&v) {
                    let extends = c.iter().all(|&u| g.conflicts(u, v));
                    assert!(!extends, "case {case}: clique {c:?} extensible by {v}");
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if adj[a][b] {
                    assert!(
                        cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                        "case {case}: edge ({a},{b}) uncovered"
                    );
                }
            }
        }
    }
}

/// LP optimality certificate: the simplex solution is feasible, and no
/// single-coordinate feasible increase improves the objective (local
/// optimality, which for LPs over ≤-constraints with c ≥ 0 follows
/// from global optimality).
#[test]
fn simplex_solutions_are_feasible_and_tight() {
    let mut rng = StdRng::seed_from_u64(0xE003);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..5);
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..5.0)).collect();
        let m = rng.gen_range(1usize..5);
        let a: Vec<Vec<f64>> =
            (0..m).map(|_| (0..n).map(|_| rng.gen_range(0.1f64..3.0)).collect()).collect();
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5f64..4.0)).collect();
        let out = solve_lp(&c, &a, &b).expect("bounded: all coefficients positive");
        // Feasible.
        for (row, &bi) in a.iter().zip(&b) {
            let lhs: f64 = row.iter().zip(&out.x).map(|(ai, xi)| ai * xi).sum();
            assert!(lhs <= bi + 1e-7, "case {case}: constraint violated: {lhs} > {bi}");
        }
        // No coordinate can be pushed further without violating something
        // (complementary slackness corollary for c > 0).
        for j in 0..n {
            if c[j] <= 1e-9 {
                continue;
            }
            let headroom = a
                .iter()
                .zip(&b)
                .map(|(row, &bi)| {
                    let lhs: f64 = row.iter().zip(&out.x).map(|(ai, xi)| ai * xi).sum();
                    if row[j] > 1e-12 {
                        (bi - lhs) / row[j]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(f64::INFINITY, f64::min);
            assert!(headroom < 1e-6, "case {case}: variable {j} had headroom {headroom}");
        }
    }
}
